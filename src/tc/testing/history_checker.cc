#include "tc/testing/history_checker.h"

#include <algorithm>

namespace tc::testing {

void HistoryChecker::OnBegin(const std::string& txn_id,
                             const cloud::SnapshotDescriptor& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  Txn& txn = txns_[txn_id];
  if (txn.began) {
    protocol_errors_.push_back(txn_id + ": began twice");
    return;
  }
  txn.began = true;
  txn.snapshot = snapshot;
}

void HistoryChecker::OnRead(const std::string& txn_id, const std::string& key,
                            uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  Txn& txn = txns_[txn_id];
  if (!txn.began) {
    protocol_errors_.push_back(txn_id + ": read of " + key +
                               " before begin");
    return;
  }
  txn.reads.emplace_back(key, version);
}

void HistoryChecker::OnCommit(
    const std::string& txn_id, uint64_t commit_seq,
    const std::vector<std::pair<std::string, uint64_t>>& writes) {
  std::lock_guard<std::mutex> lock(mu_);
  Txn& txn = txns_[txn_id];
  if (!txn.began) {
    protocol_errors_.push_back(txn_id + ": commit before begin");
  }
  if (txn.committed || txn.aborted) {
    protocol_errors_.push_back(txn_id + ": resolved twice");
    return;
  }
  txn.committed = true;
  txn.commit_seq = commit_seq;
  txn.writes = writes;
}

void HistoryChecker::OnAbort(const std::string& txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Txn& txn = txns_[txn_id];
  if (txn.committed || txn.aborted) {
    protocol_errors_.push_back(txn_id + ": resolved twice");
    return;
  }
  txn.aborted = true;
}

std::vector<std::string> HistoryChecker::Verify() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> violations = protocol_errors_;

  // Index every committed write: key -> version -> (txn, commit_seq).
  struct WriteRec {
    const std::string* txn_id;
    uint64_t commit_seq;
  };
  std::map<std::string, std::map<uint64_t, WriteRec>> key_versions;
  std::map<uint64_t, const std::string*> seq_owner;
  for (const auto& [id, txn] : txns_) {
    if (!txn.committed) continue;
    if (txn.commit_seq == 0) {
      violations.push_back(id + ": committed with sequence number 0");
      continue;
    }
    auto [seq_it, fresh] = seq_owner.emplace(txn.commit_seq, &id);
    if (!fresh) {
      violations.push_back(id + " and " + *seq_it->second +
                           ": share commit sequence number " +
                           std::to_string(txn.commit_seq));
    }
    for (const auto& [key, version] : txn.writes) {
      if (version == 0) {
        violations.push_back(id + ": committed version 0 of " + key);
        continue;
      }
      auto [it, inserted] =
          key_versions[key].emplace(version, WriteRec{&id, txn.commit_seq});
      if (!inserted) {
        violations.push_back(id + " and " + *it->second.txn_id +
                             ": both committed " + key + " version " +
                             std::to_string(version));
      }
    }
  }

  // 1+2: per-key density and version/sequence order agreement.
  for (const auto& [key, versions] : key_versions) {
    uint64_t expect = 1;
    uint64_t prev_seq = 0;
    for (const auto& [version, rec] : versions) {
      if (version != expect) {
        violations.push_back(key + ": version gap — expected " +
                             std::to_string(expect) + ", next committed is " +
                             std::to_string(version));
        expect = version;  // Report each gap once.
      }
      ++expect;
      if (rec.commit_seq <= prev_seq) {
        violations.push_back(
            key + ": version " + std::to_string(version) + " (" +
            *rec.txn_id + ") committed at sequence " +
            std::to_string(rec.commit_seq) +
            ", not after its predecessor's sequence " +
            std::to_string(prev_seq));
      }
      prev_seq = rec.commit_seq;
    }
  }

  // Newest version of `key` visible in `snap` under the closed-world
  // committed-write index; 0 = none visible.
  auto visible_version = [&](const std::string& key,
                             const cloud::SnapshotDescriptor& snap) {
    auto it = key_versions.find(key);
    if (it == key_versions.end()) return uint64_t{0};
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      if (snap.Visible(rit->second.commit_seq)) return rit->first;
    }
    return uint64_t{0};
  };

  for (const auto& [id, txn] : txns_) {
    if (!txn.began) continue;
    // 3: every read (also on aborted attempts) saw exactly the newest
    // version visible in its snapshot.
    for (const auto& [key, version] : txn.reads) {
      uint64_t expected = visible_version(key, txn.snapshot);
      if (version != expected) {
        violations.push_back(
            id + ": read " + key + " version " + std::to_string(version) +
            " under a snapshot whose newest visible version is " +
            std::to_string(expected));
      }
    }
    if (!txn.committed) continue;
    // 4: first-committer-wins — a read-modify-write landed exactly one
    // version above what it read (lost updates surface here).
    for (const auto& [key, version] : txn.writes) {
      for (const auto& [rkey, rversion] : txn.reads) {
        if (rkey != key) continue;
        if (version != rversion + 1) {
          violations.push_back(
              id + ": wrote " + key + " version " + std::to_string(version) +
              " after reading version " + std::to_string(rversion) +
              " (lost update)");
        }
      }
    }
    // 5: the snapshot predates the commit.
    if (txn.snapshot.Visible(txn.commit_seq)) {
      violations.push_back(id + ": own commit sequence " +
                           std::to_string(txn.commit_seq) +
                           " is visible in its own snapshot");
    }
  }
  return violations;
}

size_t HistoryChecker::recorded_txns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txns_.size();
}

size_t HistoryChecker::commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, txn] : txns_) n += txn.committed ? 1 : 0;
  return n;
}

size_t HistoryChecker::aborts() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, txn] : txns_) n += txn.aborted ? 1 : 0;
  return n;
}

}  // namespace tc::testing
