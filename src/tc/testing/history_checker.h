#ifndef TC_TESTING_HISTORY_CHECKER_H_
#define TC_TESTING_HISTORY_CHECKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "tc/cloud/txn.h"

namespace tc::testing {

/// Records a concurrent transaction history (begin / snapshot reads /
/// commit / abort, fed through the cloud::TxnHistorySink interface from
/// any number of threads) and verifies after the fact that the provider
/// produced a serializable execution.
///
/// The checker assumes a CLOSED WORLD over the keys it sees: every
/// committed write of those keys was reported to the sink. Under that
/// assumption, Verify() enforces:
///
///  1. Per-key version density: the committed versions of each key are
///     exactly 1..N, each written by exactly one commit.
///  2. Version order: a key's commit sequence numbers strictly increase
///     with its version numbers (the provider's serialization order and
///     the version order agree), and no two commits share a sequence
///     number.
///  3. Snapshot-read consistency: every recorded read (committed OR
///     aborted attempt) returned exactly the newest version visible in
///     the attempt's snapshot — no torn snapshots, no future reads.
///  4. Read-modify-write currency (first-committer-wins): a commit that
///     both read and wrote a key wrote exactly read_version + 1 — the
///     lost-update anomaly is a violation.
///  5. Self-visibility: a transaction's own commit sequence number is not
///     visible in its own snapshot.
///
/// Violations are returned as human-readable strings (empty = the history
/// is serializable). The sink methods are thread-safe; Verify() is meant
/// to run after the workload quiesces.
class HistoryChecker : public cloud::TxnHistorySink {
 public:
  void OnBegin(const std::string& txn_id,
               const cloud::SnapshotDescriptor& snapshot) override;
  void OnRead(const std::string& txn_id, const std::string& key,
              uint64_t version) override;
  void OnCommit(
      const std::string& txn_id, uint64_t commit_seq,
      const std::vector<std::pair<std::string, uint64_t>>& writes) override;
  void OnAbort(const std::string& txn_id) override;

  /// Full serializability audit; empty result = pass.
  std::vector<std::string> Verify() const;

  size_t recorded_txns() const;
  size_t commits() const;
  size_t aborts() const;

 private:
  struct Txn {
    bool began = false;
    bool committed = false;
    bool aborted = false;
    cloud::SnapshotDescriptor snapshot;
    uint64_t commit_seq = 0;
    std::vector<std::pair<std::string, uint64_t>> reads;
    std::vector<std::pair<std::string, uint64_t>> writes;
  };

  mutable std::mutex mu_;
  std::map<std::string, Txn> txns_;
  std::vector<std::string> protocol_errors_;  // Malformed event sequences.
};

}  // namespace tc::testing

#endif  // TC_TESTING_HISTORY_CHECKER_H_
