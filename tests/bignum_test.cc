#include <gtest/gtest.h>

#include "tc/common/rng.h"
#include "tc/crypto/bignum.h"

namespace tc::crypto {
namespace {

BigInt FromHexOrDie(std::string_view hex) {
  auto r = BigInt::FromHex(hex);
  TC_CHECK(r.ok());
  return *r;
}

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(zero.IsEven());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToHex(), "0");
  EXPECT_EQ(zero.ToBytesBE(), Bytes{0});
}

TEST(BigIntTest, U64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 0xffffffffULL, 0x100000000ULL,
                     0xdeadbeefcafebabeULL}) {
    EXPECT_EQ(BigInt(v).ToU64(), v);
  }
}

TEST(BigIntTest, HexRoundTrip) {
  const char* kHex = "deadbeefcafebabe0123456789abcdef00ff";
  BigInt v = FromHexOrDie(kHex);
  EXPECT_EQ(v.ToHex(), kHex);
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes b = {0x01, 0x00, 0xff, 0x42, 0x00};
  BigInt v = BigInt::FromBytesBE(b);
  EXPECT_EQ(v.ToBytesBE(5), b);
  // Minimal encoding drops nothing here (leading byte non-zero).
  EXPECT_EQ(v.ToBytesBE(), b);
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(5), b(7), c = FromHexOrDie("10000000000000000");  // 2^64
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(BigInt::Compare(a, a), 0);
  EXPECT_GT(c, a);
}

TEST(BigIntTest, AddSubInverse) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    uint64_t x = rng.NextU64() >> 1;
    uint64_t y = rng.NextU64() >> 1;
    BigInt a(x), b(y);
    BigInt sum = BigInt::Add(a, b);
    EXPECT_EQ(sum.ToU64(), x + y);
    EXPECT_EQ(BigInt::Sub(sum, b), a);
    EXPECT_EQ(BigInt::Sub(sum, a), b);
  }
}

TEST(BigIntTest, AddCarriesAcrossLimbs) {
  BigInt a = FromHexOrDie("ffffffffffffffffffffffffffffffff");
  BigInt one(1);
  EXPECT_EQ(BigInt::Add(a, one).ToHex(), "100000000000000000000000000000000");
}

TEST(BigIntTest, MulMatchesU64) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    uint64_t x = rng.NextU64() >> 33;
    uint64_t y = rng.NextU64() >> 33;
    EXPECT_EQ(BigInt::Mul(BigInt(x), BigInt(y)).ToU64(), x * y);
  }
}

TEST(BigIntTest, MulKnownBigProduct) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
  BigInt a = FromHexOrDie("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(BigInt::Mul(a, a).ToHex(),
            "fffffffffffffffffffffffffffffffe"
            "00000000000000000000000000000001");
}

TEST(BigIntTest, DivModReconstructs) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    // Random sizes including multi-limb divisors to exercise Algorithm D.
    size_t abits = 1 + rng.NextBelow(512);
    size_t bbits = 1 + rng.NextBelow(256);
    Bytes araw = rng.NextBytes((abits + 7) / 8);
    Bytes braw = rng.NextBytes((bbits + 7) / 8);
    BigInt a = BigInt::FromBytesBE(araw);
    BigInt b = BigInt::FromBytesBE(braw);
    if (b.IsZero()) continue;
    BigInt rem;
    BigInt q = BigInt::DivMod(a, b, &rem);
    EXPECT_LT(rem, b);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), rem), a);
  }
}

TEST(BigIntTest, DivModAlgorithmDAddBackCase) {
  // Divisor with maximal top limb stresses the qhat correction path.
  BigInt a = FromHexOrDie("800000000000000000000000000000000000000000000000");
  BigInt b = FromHexOrDie("ffffffffffffffffffffffff");
  BigInt rem;
  BigInt q = BigInt::DivMod(a, b, &rem);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), rem), a);
  EXPECT_LT(rem, b);
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt v = FromHexOrDie("123456789abcdef0123456789abcdef");
  for (size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(v, s), s), v);
  }
}

TEST(BigIntTest, BitAccess) {
  BigInt v = FromHexOrDie("8000000000000001");
  EXPECT_TRUE(v.Bit(0));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_TRUE(v.Bit(63));
  EXPECT_FALSE(v.Bit(64));
  EXPECT_EQ(v.BitLength(), 64u);
}

TEST(BigIntTest, ModExpSmallKnownValues) {
  // 3^7 mod 10 = 2187 mod 10 = 7.
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(7), BigInt(10)).ToU64(), 7u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  BigInt p(1000003);
  EXPECT_TRUE(
      BigInt::ModExp(BigInt(12345), BigInt(1000002), p).IsOne());
  // Anything mod 1 is 0.
  EXPECT_TRUE(BigInt::ModExp(BigInt(5), BigInt(5), BigInt(1)).IsZero());
}

TEST(BigIntTest, ModExpLargeFermat) {
  SecureRandom rng(ToBytes("modexp-test"));
  BigInt p = BigInt::GeneratePrime(rng, 192);
  BigInt a = BigInt::RandomBelow(rng, p);
  if (a.IsZero()) a = BigInt(2);
  EXPECT_TRUE(BigInt::ModExp(a, BigInt::Sub(p, BigInt(1)), p).IsOne());
}

TEST(BigIntTest, ModInverseCorrect) {
  SecureRandom rng(ToBytes("inverse-test"));
  BigInt p = BigInt::GeneratePrime(rng, 128);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(rng, p);
    if (a.IsZero()) continue;
    auto inv = BigInt::ModInverse(a, p);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(BigInt::ModMul(a, *inv, p).IsOne());
  }
}

TEST(BigIntTest, ModInverseOfNonCoprimeFails) {
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());
  EXPECT_FALSE(BigInt::ModInverse(BigInt(0), BigInt(7)).ok());
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)).ToU64(), 12u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(5)).ToU64(), 1u);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToU64(), 5u);
}

TEST(BigIntTest, ModSubWrapsCorrectly) {
  BigInt m(100);
  EXPECT_EQ(BigInt::ModSub(BigInt(3), BigInt(7), m).ToU64(), 96u);
  EXPECT_EQ(BigInt::ModSub(BigInt(7), BigInt(3), m).ToU64(), 4u);
}

TEST(BigIntTest, RandomBelowInRange) {
  SecureRandom rng(ToBytes("range-test"));
  BigInt bound(1000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::RandomBelow(rng, bound), bound);
  }
}

TEST(BigIntTest, RandomBitsHasExactBitLength) {
  SecureRandom rng(ToBytes("bits-test"));
  for (size_t bits : {1u, 8u, 9u, 33u, 256u}) {
    EXPECT_EQ(BigInt::RandomBits(rng, bits).BitLength(), bits);
  }
}

TEST(BigIntTest, PrimalityKnownPrimesAndComposites) {
  SecureRandom rng(ToBytes("prime-test"));
  for (uint64_t p : {2u, 3u, 5u, 7u, 97u, 65537u, 1000003u}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(p), rng)) << p;
  }
  for (uint64_t c : {1u, 4u, 100u, 65536u, 1000001u}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(c), rng)) << c;
  }
  // Carmichael number 561 = 3 * 11 * 17 must be rejected.
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(561), rng));
}

TEST(BigIntTest, GeneratePrimeHasRequestedSize) {
  SecureRandom rng(ToBytes("genprime-test"));
  BigInt p = BigInt::GeneratePrime(rng, 96);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, rng));
}

}  // namespace
}  // namespace tc::crypto
