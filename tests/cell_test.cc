#include <gtest/gtest.h>

#include <memory>

#include "tc/cell/cell.h"
#include "tc/cell/vault_baseline.h"

namespace tc::cell {
namespace {

using policy::ObligationType;
using policy::Policy;
using policy::Right;
using policy::UsageRule;

class CellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_.Set(MakeTimestamp(2013, 1, 7, 9, 0, 0));
    alice_gateway_ = MakeCell("alice-gateway", "alice",
                              tee::DeviceClass::kHomeGateway);
    alice_phone_ =
        MakeCell("alice-phone", "alice", tee::DeviceClass::kSmartPhone);
    bob_phone_ = MakeCell("bob-phone", "bob", tee::DeviceClass::kSmartPhone);
  }

  std::unique_ptr<TrustedCell> MakeCell(const std::string& id,
                                        const std::string& owner,
                                        tee::DeviceClass device_class) {
    TrustedCell::Config config;
    config.cell_id = id;
    config.owner = owner;
    config.device_class = device_class;
    // Small flash keeps tests fast.
    config.use_default_flash = false;
    config.flash.page_size = 2048;
    config.flash.pages_per_block = 16;
    config.flash.block_count = 256;
    auto cell = TrustedCell::Create(config, &cloud_, &directory_, &clock_);
    TC_CHECK(cell.ok());
    return std::move(*cell);
  }

  Policy BobReadPolicy(int max_uses = 0) {
    UsageRule rule;
    rule.id = "bob-read";
    rule.subjects = {"bob"};
    rule.rights = {Right::kRead};
    rule.max_uses = max_uses;
    rule.obligations = {ObligationType::kLogAccess,
                        ObligationType::kNotifyOwner};
    Policy p;
    p.id = "share-with-bob";
    p.owner = "alice";
    p.rules = {rule};
    return p;
  }

  SimulatedClock clock_;
  cloud::CloudInfrastructure cloud_;
  CellDirectory directory_;
  std::unique_ptr<TrustedCell> alice_gateway_;
  std::unique_ptr<TrustedCell> alice_phone_;
  std::unique_ptr<TrustedCell> bob_phone_;
};

TEST_F(CellTest, CellsRegisterInDirectory) {
  EXPECT_EQ(directory_.size(), 3u);
  EXPECT_EQ(directory_.CellsOf("alice").size(), 2u);
  auto bob = directory_.Lookup("bob-phone");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->owner, "bob");
}

TEST_F(CellTest, StoreAndFetchOwnDocument) {
  Bytes content = ToBytes("electricity bill January 2013");
  auto doc_id = alice_gateway_->StoreDocument(
      "EDF bill 2013-01", "bill energy edf", content,
      MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  auto fetched = alice_gateway_->FetchDocument(*doc_id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);
  EXPECT_EQ(alice_gateway_->stats().documents_stored, 1u);
  EXPECT_EQ(alice_gateway_->stats().reads_allowed, 1u);
}

TEST_F(CellTest, PayloadInCloudIsCiphertext) {
  Bytes content = ToBytes("super secret medical record");
  auto doc_id = alice_gateway_->StoreDocument("medical", "health", content,
                                              MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  auto meta = alice_gateway_->GetDocumentMeta(*doc_id);
  ASSERT_TRUE(meta.ok());
  Bytes blob = *cloud_.GetBlob(meta->blob_id);
  std::string blob_str(blob.begin(), blob.end());
  EXPECT_EQ(blob_str.find("secret"), std::string::npos);
  EXPECT_EQ(blob_str.find("medical"), std::string::npos);
}

TEST_F(CellTest, MetadataSearchIsLocal) {
  (void)*alice_gateway_->StoreDocument("Paris photo", "photo paris 2012",
                                       ToBytes("jpg"), MakeOwnerPolicy("alice"));
  (void)*alice_gateway_->StoreDocument("Bill EDF", "bill energy",
                                       ToBytes("pdf"), MakeOwnerPolicy("alice"));
  uint64_t gets_before = cloud_.stats().blob_gets;
  auto hits = alice_gateway_->SearchDocuments("paris");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].title, "Paris photo");
  // Metadata-first: the search touched no cloud blob.
  EXPECT_EQ(cloud_.stats().blob_gets, gets_before);
}

TEST_F(CellTest, UpdateBumpsVersionAndFetchesLatest) {
  auto doc_id = alice_gateway_->StoreDocument("notes", "notes",
                                              ToBytes("v1"),
                                              MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(alice_gateway_->UpdateDocument(*doc_id, ToBytes("v2")).ok());
  EXPECT_EQ(alice_gateway_->GetDocumentMeta(*doc_id)->version, 2u);
  EXPECT_EQ(*alice_gateway_->FetchDocument(*doc_id), ToBytes("v2"));
}

TEST_F(CellTest, OwnerPolicyDeniesStrangers) {
  auto doc_id = alice_gateway_->StoreDocument(
      "private", "private", ToBytes("x"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  auto read = alice_gateway_->ReadSharedDocument(*doc_id, "mallory");
  EXPECT_TRUE(read.status().IsPermissionDenied());
  EXPECT_EQ(alice_gateway_->stats().reads_denied, 1u);
}

TEST_F(CellTest, SyncPropagatesMetadataBetweenOwnerCells) {
  Bytes content = ToBytes("pay slip March");
  auto doc_id = alice_gateway_->StoreDocument("pay slip", "salary pay",
                                              content,
                                              MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(alice_gateway_->SyncPush().ok());
  ASSERT_TRUE(alice_phone_->SyncPull().ok());

  // The phone now finds the doc locally and can fetch+decrypt it (doc key
  // derived from the shared owner master).
  auto hits = alice_phone_->SearchDocuments("salary");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  auto fetched = alice_phone_->FetchDocument(*doc_id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);
}

TEST_F(CellTest, SyncRollbackDetected) {
  (void)*alice_gateway_->StoreDocument("d1", "k", ToBytes("1"),
                                       MakeOwnerPolicy("alice"));
  ASSERT_TRUE(alice_gateway_->SyncPush().ok());
  ASSERT_TRUE(alice_phone_->SyncPull().ok());
  (void)*alice_gateway_->StoreDocument("d2", "k", ToBytes("2"),
                                       MakeOwnerPolicy("alice"));
  ASSERT_TRUE(alice_gateway_->SyncPush().ok());
  ASSERT_TRUE(alice_phone_->SyncPull().ok());

  // The adversary rolls the manifest back to version 1 on every read.
  cloud::AdversaryConfig adversary;
  adversary.rollback_read_prob = 1.0;
  cloud_.set_adversary(adversary);
  Status pulled = alice_phone_->SyncPull();
  EXPECT_TRUE(pulled.IsIntegrityViolation());
  ASSERT_FALSE(alice_phone_->incidents().empty());
  EXPECT_EQ(alice_phone_->incidents().back().type,
            IncidentType::kRollbackDetected);
}

TEST_F(CellTest, ShareGrantFlowEndToEnd) {
  Bytes content = ToBytes("holiday photo from Brittany");
  auto doc_id = alice_gateway_->StoreDocument("Brittany photo",
                                              "photo brittany holiday",
                                              content, MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(
      alice_gateway_->ShareDocument(*doc_id, "bob-phone", BobReadPolicy())
          .ok());
  auto accepted = bob_phone_->ProcessInbox();
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, 1);

  auto read = bob_phone_->ReadSharedDocument(*doc_id, "bob");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
  EXPECT_EQ(bob_phone_->stats().reads_allowed, 1u);

  // Obligation kNotifyOwner produced an access notification for Alice.
  (void)alice_gateway_->ProcessInbox();
  auto notifications = alice_gateway_->TakeMessages("access-notification");
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0].from, "bob-phone");
}

TEST_F(CellTest, SharedPolicyEnforcedOnRecipient) {
  auto doc_id = alice_gateway_->StoreDocument(
      "photo", "photo", ToBytes("img"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  // Two uses only (footnote-6 style mutability).
  ASSERT_TRUE(
      alice_gateway_->ShareDocument(*doc_id, "bob-phone", BobReadPolicy(2))
          .ok());
  ASSERT_EQ(*bob_phone_->ProcessInbox(), 1);

  EXPECT_TRUE(bob_phone_->ReadSharedDocument(*doc_id, "bob").ok());
  EXPECT_TRUE(bob_phone_->ReadSharedDocument(*doc_id, "bob").ok());
  auto third = bob_phone_->ReadSharedDocument(*doc_id, "bob");
  EXPECT_TRUE(third.status().IsPermissionDenied());
  // Carol can't read on Bob's cell either (not a rule subject).
  EXPECT_TRUE(bob_phone_->ReadSharedDocument(*doc_id, "carol")
                  .status()
                  .IsPermissionDenied());
}

TEST_F(CellTest, ForgedGrantRejected) {
  auto doc_id = alice_gateway_->StoreDocument(
      "doc", "doc", ToBytes("x"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(
      alice_gateway_->ShareDocument(*doc_id, "bob-phone", BobReadPolicy())
          .ok());
  // The infrastructure tampers with the grant in transit.
  auto pending = cloud_.Receive("bob-phone");
  ASSERT_EQ(pending.size(), 1u);
  Bytes tampered = pending[0].payload;
  tampered[tampered.size() / 2] ^= 1;
  cloud_.Send(pending[0].from, "bob-phone", "share", tampered);

  auto accepted = bob_phone_->ProcessInbox();
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, 0);
  ASSERT_FALSE(bob_phone_->incidents().empty());
}

TEST_F(CellTest, ReplayedGrantDetected) {
  auto doc_id = alice_gateway_->StoreDocument(
      "doc", "doc", ToBytes("x"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(
      alice_gateway_->ShareDocument(*doc_id, "bob-phone", BobReadPolicy())
          .ok());
  auto pending = cloud_.Receive("bob-phone");
  ASSERT_EQ(pending.size(), 1u);
  // Deliver the same grant twice.
  cloud_.Send(pending[0].from, "bob-phone", "share", pending[0].payload);
  cloud_.Send(pending[0].from, "bob-phone", "share", pending[0].payload);
  auto accepted = bob_phone_->ProcessInbox();
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, 1);
  bool replay_detected = false;
  for (const auto& incident : bob_phone_->incidents()) {
    if (incident.type == IncidentType::kReplayedGrant) replay_detected = true;
  }
  EXPECT_TRUE(replay_detected);
}

TEST_F(CellTest, TamperedPayloadDetectedOnFetch) {
  auto doc_id = alice_gateway_->StoreDocument(
      "doc", "doc", ToBytes("payload"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  cloud::AdversaryConfig adversary;
  adversary.tamper_read_prob = 1.0;
  cloud_.set_adversary(adversary);
  auto fetched = alice_gateway_->FetchDocument(*doc_id);
  EXPECT_TRUE(fetched.status().IsIntegrityViolation());
  ASSERT_FALSE(alice_gateway_->incidents().empty());
  EXPECT_EQ(alice_gateway_->incidents().back().type,
            IncidentType::kPayloadTampered);
}

TEST_F(CellTest, BlobRollbackDetectedOnFetch) {
  auto doc_id = alice_gateway_->StoreDocument(
      "doc", "doc", ToBytes("v1"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(alice_gateway_->UpdateDocument(*doc_id, ToBytes("v2")).ok());
  cloud::AdversaryConfig adversary;
  adversary.rollback_read_prob = 1.0;
  cloud_.set_adversary(adversary);
  auto fetched = alice_gateway_->FetchDocument(*doc_id);
  EXPECT_TRUE(fetched.status().IsIntegrityViolation());
  ASSERT_FALSE(alice_gateway_->incidents().empty());
  EXPECT_EQ(alice_gateway_->incidents().back().type,
            IncidentType::kRollbackDetected);
}

TEST_F(CellTest, AuditLogPushedAndVerifiedByOriginator) {
  auto doc_id = alice_gateway_->StoreDocument(
      "doc", "doc", ToBytes("x"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(
      alice_gateway_->ShareDocument(*doc_id, "bob-phone", BobReadPolicy(3))
          .ok());
  ASSERT_EQ(*bob_phone_->ProcessInbox(), 1);
  (void)bob_phone_->ReadSharedDocument(*doc_id, "bob");
  (void)bob_phone_->ReadSharedDocument(*doc_id, "carol");  // Denied.

  ASSERT_TRUE(bob_phone_->PushAuditLog("alice-gateway").ok());
  (void)alice_gateway_->ProcessInbox();
  auto pushes = alice_gateway_->TakeMessages("audit-log");
  ASSERT_EQ(pushes.size(), 1u);
  auto entries = alice_gateway_->VerifyAuditPush(pushes[0]);
  ASSERT_TRUE(entries.ok());
  // The journal carries the full evidence stream: the cell's boot
  // attestation record first, then the two policy decisions.
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].kind, obs::AuditKind::kAttestation);
  EXPECT_EQ((*entries)[1].subject, "bob");
  EXPECT_EQ((*entries)[1].kind, obs::AuditKind::kPolicyDecision);
  EXPECT_TRUE((*entries)[1].allowed);
  EXPECT_EQ((*entries)[2].subject, "carol");
  EXPECT_FALSE((*entries)[2].allowed);
}

TEST_F(CellTest, SensorIngestAndGranularityViews) {
  // One hour of 1 Hz readings.
  Timestamp start = MakeTimestamp(2013, 1, 7, 0, 0, 0);
  for (int i = 0; i < 3600; ++i) {
    ASSERT_TRUE(
        alice_gateway_->IngestReading("power", start + i, 200 + i % 100)
            .ok());
  }
  auto quarter_hours =
      alice_gateway_->Aggregates("power", start, start + 3600, 900);
  ASSERT_TRUE(quarter_hours.ok());
  EXPECT_EQ(quarter_hours->size(), 4u);
  for (const auto& w : *quarter_hours) {
    EXPECT_EQ(w.count, 900u);
    EXPECT_GT(w.mean, 199.0);
  }
  // Publish to the social game at daily granularity.
  ASSERT_TRUE(alice_gateway_
                  ->PublishAggregate("social-game", "power", start,
                                     start + 3600, kSecondsPerDay)
                  .ok());
  auto msgs = cloud_.Receive("social-game");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].topic, "aggregate");
}

TEST_F(CellTest, PublishedAggregatePayloadDecodes) {
  Timestamp start = MakeTimestamp(2013, 1, 7, 0, 0, 0);
  for (int i = 0; i < 1800; ++i) {
    ASSERT_TRUE(alice_gateway_->IngestReading("power", start + i, 100).ok());
  }
  ASSERT_TRUE(alice_gateway_
                  ->PublishAggregate("utility", "power", start, start + 1800,
                                     900)
                  .ok());
  auto msgs = cloud_.Receive("utility");
  ASSERT_EQ(msgs.size(), 1u);
  BinaryReader r(msgs[0].payload);
  EXPECT_EQ(*r.GetString(), "power");
  EXPECT_EQ(*r.GetI64(), 900);
  ASSERT_EQ(*r.GetVarint(), 2u);  // Two 15-minute windows.
  EXPECT_EQ(*r.GetI64(), start);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 100.0);
  EXPECT_EQ(*r.GetI64(), start + 900);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 100.0);
  EXPECT_TRUE(r.AtEnd());
}

TEST_F(CellTest, ProvideAggregateValueSums) {
  Timestamp start = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(alice_gateway_->IngestReading("power", start + i, 10).ok());
  }
  auto sum = alice_gateway_->ProvideAggregateValue("power", 0, 100);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 1000);
}

TEST_F(CellTest, DeleteAfterUseObligation) {
  UsageRule rule;
  rule.id = "one-shot";
  rule.subjects = {"bob"};
  rule.rights = {Right::kRead};
  rule.obligations = {ObligationType::kDeleteAfterUse};
  Policy p{"one-shot-policy", "alice", {rule}};

  auto doc_id = alice_gateway_->StoreDocument(
      "ephemeral", "secret", ToBytes("burn after reading"),
      MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc_id.ok());
  ASSERT_TRUE(alice_gateway_->ShareDocument(*doc_id, "bob-phone", p).ok());
  ASSERT_EQ(*bob_phone_->ProcessInbox(), 1);
  ASSERT_TRUE(bob_phone_->ReadSharedDocument(*doc_id, "bob").ok());
  // Metadata and key are gone afterwards.
  EXPECT_TRUE(
      bob_phone_->ReadSharedDocument(*doc_id, "bob").status().IsNotFound());
}

TEST_F(CellTest, CentralizedVaultBaselineContrasts) {
  CentralizedVault vault(&cloud_, &clock_);
  Policy alice_only = MakeOwnerPolicy("alice");
  auto doc = vault.StoreDocument("alice", "diary", ToBytes("dear diary"),
                                 alice_only);
  ASSERT_TRUE(doc.ok());
  // Policy honoured at first...
  EXPECT_TRUE(vault.ReadDocument(*doc, "mallory").status().IsPermissionDenied());
  EXPECT_TRUE(vault.ReadDocument(*doc, "alice").ok());
  // ...until the provider silently changes its mind.
  vault.set_honour_policies(false);
  EXPECT_TRUE(vault.ReadDocument(*doc, "mallory").ok());
  // And one breach exposes everything in plaintext.
  auto loot = vault.BreachAll();
  ASSERT_EQ(loot.size(), 1u);
  EXPECT_EQ(ToString(std::get<2>(loot[0])), "dear diary");
}

}  // namespace
}  // namespace tc::cell
