// Chaos suite for the partition-tolerant sync stack: randomized network
// fault schedules over a concurrent fleet, with three invariants that must
// hold at ANY fault rate:
//   1. zero acked-write loss      — an acknowledged write is durable and
//                                   readable as the provider's latest state
//   2. no version anomalies       — acked versions per doc strictly increase
//   3. no duplicate side-effects  — versions created == idempotency tokens
//                                   applied + txn writes applied, however
//                                   often the network re-delivered anything
// plus serializability of the contended multi-key transaction workload
// (HistoryChecker over a fault-rate x seed sweep) and the CI
// reproducibility gate: every chaos seed must replay exactly from its
// printed fault schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "tc/cell/cell.h"
#include "tc/cloud/fault_injector.h"
#include "tc/cloud/infrastructure.h"
#include "tc/common/clock.h"
#include "tc/fleet/fleet.h"
#include "tc/rpc/wire_harness.h"
#include "tc/testing/history_checker.h"

namespace tc {
namespace {

using cloud::CloudInfrastructure;
using cloud::NetworkFaultConfig;
using cloud::NetworkFaultInjector;
using fleet::FleetOptions;
using fleet::FleetReport;

// TC_TRANSPORT=socket (the chaos_test_wire ctest leg) reruns this entire
// suite with every channel crossing a real loopback TCP connection to an
// RpcServer in front of the same CloudInfrastructure — the fault injector
// and every invariant below are unchanged. Skip the wire leg loudly where
// the sandbox forbids loopback sockets.
#define SKIP_IF_WIRE_LEG_IMPOSSIBLE()                           \
  do {                                                          \
    if (const char* reason = rpc::WireHarness::SkipReason()) {  \
      GTEST_SKIP() << reason;                                   \
    }                                                           \
  } while (false)

FleetOptions ChaosFleet() {
  FleetOptions options;
  options.cells = 16;
  options.threads = 8;
  options.rounds_per_cell = 12;
  options.put_batch = 4;
  options.gets_per_round = 4;
  options.docs_per_cell = 16;
  options.payload_bytes = 64;
  options.resilient = true;
  return options;
}

void ExpectInvariantsHold(const FleetReport& report,
                          CloudInfrastructure& cloud,
                          const NetworkFaultInjector& injector,
                          const std::string& label) {
  // Cell-level: no cell died (version anomalies, acked-write loss and
  // read-mismatch all fail the cell with a descriptive status).
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.status.ok())
        << label << " " << cell.cell_id << ": " << cell.status.ToString()
        << "\nfault schedule:\n" << injector.FormatSchedule();
  }
  EXPECT_EQ(report.cells_failed, 0u) << label;
  // Convergence: nothing left pending, every acked write is the latest
  // provider state.
  EXPECT_TRUE(report.converged) << label;
  EXPECT_EQ(report.cells_converged, report.cells.size()) << label;
  // Exactly-once: however many times the network re-delivered writes
  // (lost acks, duplicates, torn batches), each logical write created at
  // most one version — tokened puts and transaction writes both.
  EXPECT_EQ(cloud.blob_store().versions_created(),
            cloud.blob_store().tokens_applied() +
                cloud.blob_store().txn_writes_applied())
      << label << ": duplicate side-effects ("
      << cloud.blob_store().token_dedupe_hits() << " dedupe hits, "
      << cloud.blob_store().txn_replays() << " txn replays)";
}

// Deep-sweep width is env-tunable: the CI default keeps the lane cheap,
// `TC_CHAOS_SEEDS=25 ctest -L chaos` runs the wide sweep.
uint64_t ChaosSeedCount(uint64_t fallback) {
  const char* env = std::getenv("TC_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

TEST(ChaosTest, FaultRateSweepHoldsInvariants) {
  // 1%, 10% and 50% per-attempt fault rates, several seeds each, over an
  // 8-thread fleet. All virtual-time: no wall sleeps anywhere.
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  const uint64_t seeds = ChaosSeedCount(3);
  for (double rate : {0.01, 0.10, 0.50}) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      CloudInfrastructure cloud;
      NetworkFaultConfig config = NetworkFaultConfig::Lossy(rate, seed);
      config.delay_prob = rate;
      config.throttle_prob = rate / 10;
      NetworkFaultInjector injector(config);
      cloud.set_fault_injector(&injector);
      rpc::WireHarness wire(&cloud);

      FleetOptions options = ChaosFleet();
      options.seed = seed;
      options.transport = wire.transport();
      fleet::FleetRunner runner(&cloud, options);
      auto report = runner.Run();
      std::string label =
          "rate=" + std::to_string(rate) + " seed=" + std::to_string(seed);
      ASSERT_TRUE(report.ok()) << label << ": " << report.status().ToString();
      ExpectInvariantsHold(*report, cloud, injector, label);
      if (rate >= 0.10) {
        // The network really was hostile; the fleet really did retry.
        EXPECT_GT(injector.stats().faults(), 0u) << label;
        EXPECT_GT(report->retries, 0u) << label;
      }
    }
  }
}

TEST(ChaosTest, TxnSweepIsSerializableUnderFaults) {
  // Contended multi-key read-modify-write transactions from a 16-cell /
  // 8-thread fleet over 4 shared keys, swept over fault rates x seeds.
  // At EVERY point: zero serializability violations (HistoryChecker),
  // every transaction resolves, and the commit-exactness audit holds
  // (counter == version per key; versions == commits x keys).
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  const uint64_t seeds = ChaosSeedCount(5);
  for (double rate : {0.01, 0.10, 0.30}) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      CloudInfrastructure cloud;
      NetworkFaultConfig config = NetworkFaultConfig::Lossy(rate, seed);
      config.delay_prob = rate;
      NetworkFaultInjector injector(config);
      cloud.set_fault_injector(&injector);
      rpc::WireHarness wire(&cloud);

      tc::testing::HistoryChecker checker;
      FleetOptions options = ChaosFleet();
      options.cells = 16;
      options.threads = 8;
      options.rounds_per_cell = 6;
      options.txn_workload = true;
      options.txn_shared_docs = 4;
      options.txn_keys = 2;
      options.seed = seed;
      options.history = &checker;
      options.transport = wire.transport();

      fleet::FleetRunner runner(&cloud, options);
      auto report = runner.Run();
      std::string label =
          "rate=" + std::to_string(rate) + " seed=" + std::to_string(seed);
      ASSERT_TRUE(report.ok()) << label << ": " << report.status().ToString()
                               << "\nfault schedule:\n"
                               << injector.FormatSchedule();
      for (const auto& cell : report->cells) {
        EXPECT_TRUE(cell.status.ok())
            << label << " " << cell.cell_id << ": " << cell.status.ToString();
      }
      EXPECT_TRUE(report->converged) << label;
      // Every logical transaction resolved: commit or definitive abort.
      EXPECT_EQ(report->txns_committed,
                options.cells * options.rounds_per_cell)
          << label;
      EXPECT_EQ(checker.commits(), report->txns_committed) << label;
      // The serializability verdict.
      auto violations = checker.Verify();
      EXPECT_TRUE(violations.empty()) << label << ": first violation: "
                                      << (violations.empty()
                                              ? ""
                                              : violations.front());
      // Shared keys really were contended under faults.
      if (rate >= 0.10) {
        EXPECT_GT(report->txn_aborts + report->retries, 0u) << label;
      }
      // Token-table replays and duplicate deliveries never double-applied.
      EXPECT_EQ(cloud.blob_store().versions_created(),
                cloud.blob_store().tokens_applied() +
                    cloud.blob_store().txn_writes_applied())
          << label;
    }
  }
}

TEST(ChaosTest, ForcedOutageDefersThenConverges) {
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  CloudInfrastructure cloud;
  NetworkFaultConfig config = NetworkFaultConfig::Lossy(0.05, 77);
  NetworkFaultInjector injector(config);
  cloud.set_fault_injector(&injector);
  rpc::WireHarness wire(&cloud);

  FleetOptions options = ChaosFleet();
  options.cells = 8;  // Outage heal is an all-cells barrier: cells<=threads.
  options.outage_first_rounds = 6;
  options.seed = 77;
  options.transport = wire.transport();
  fleet::FleetRunner runner(&cloud, options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectInvariantsHold(*report, cloud, injector, "outage");
  // The partition phase really deferred writes, and the drain (plus the
  // post-heal rounds) pushed every one of them through.
  EXPECT_GT(report->deferred, 0u);
  EXPECT_GT(report->breaker_opens, 0u);
  EXPECT_GT(report->heal_to_converge_seconds, 0.0);
  EXPECT_FALSE(injector.forced_outage());
}

TEST(ChaosTest, ChaosSeedReproducesFromPrintedSchedule) {
  // The CI gate: a single-threaded chaos run must replay EXACTLY from its
  // recorded fault schedule — same fleet outcome, same provider state,
  // same schedule. (Multi-threaded runs are deterministic per ordinal;
  // single-threaded the whole run is, which is what makes a printed
  // schedule a complete repro recipe.)
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  FleetOptions options = ChaosFleet();
  options.cells = 2;
  options.threads = 1;
  options.seed = 1234;

  NetworkFaultConfig config = NetworkFaultConfig::Lossy(0.25, 1234);
  config.delay_prob = 0.25;

  CloudInfrastructure original_cloud;
  NetworkFaultInjector original(config);
  original_cloud.set_fault_injector(&original);
  rpc::WireHarness original_wire(&original_cloud);
  options.transport = original_wire.transport();
  fleet::FleetRunner original_runner(&original_cloud, options);
  auto original_report = original_runner.Run();
  ASSERT_TRUE(original_report.ok());
  ASSERT_GT(original.stats().faults(), 0u);

  CloudInfrastructure replay_cloud;
  auto replay =
      NetworkFaultInjector::FromSchedule(original.Schedule(), config.seed);
  replay_cloud.set_fault_injector(replay.get());
  rpc::WireHarness replay_wire(&replay_cloud);
  options.transport = replay_wire.transport();
  fleet::FleetRunner replay_runner(&replay_cloud, options);
  auto replay_report = replay_runner.Run();
  ASSERT_TRUE(replay_report.ok());

  // Identical fault history...
  EXPECT_EQ(replay->FormatSchedule(), original.FormatSchedule());
  EXPECT_EQ(replay->stats().faults(), original.stats().faults());
  // ...identical fleet outcome...
  EXPECT_EQ(replay_report->puts, original_report->puts);
  EXPECT_EQ(replay_report->gets, original_report->gets);
  EXPECT_EQ(replay_report->retries, original_report->retries);
  EXPECT_EQ(replay_report->deferred, original_report->deferred);
  EXPECT_EQ(replay_report->drained, original_report->drained);
  EXPECT_EQ(replay_report->gets_unavailable,
            original_report->gets_unavailable);
  // ...identical provider state.
  EXPECT_EQ(replay_cloud.blob_store().versions_created(),
            original_cloud.blob_store().versions_created());
  EXPECT_EQ(replay_cloud.blob_store().tokens_applied(),
            original_cloud.blob_store().tokens_applied());
  EXPECT_EQ(replay_cloud.stats().bytes_in, original_cloud.stats().bytes_in);
}

// ---- TrustedCell end-to-end: degraded mode and anti-entropy catch-up ----

class CellChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SKIP_IF_WIRE_LEG_IMPOSSIBLE();
    clock_.Set(MakeTimestamp(2013, 1, 7, 9, 0, 0));
    cloud_.set_fault_injector(&injector_);
    wire_ = std::make_unique<rpc::WireHarness>(&cloud_);
  }

  std::unique_ptr<cell::TrustedCell> MakeCell(const std::string& id,
                                              bool resilient) {
    cell::TrustedCell::Config config;
    config.cell_id = id;
    config.owner = "alice";
    config.use_default_flash = false;
    config.flash.page_size = 2048;
    config.flash.pages_per_block = 16;
    config.flash.block_count = 256;
    config.resilient_sync = resilient;
    config.channel.op_deadline_us = 30000;  // Fail over to the outbox fast.
    config.transport = wire_->transport();  // nullptr => in-process.
    auto cell = cell::TrustedCell::Create(config, &cloud_, &directory_,
                                          &clock_);
    TC_CHECK(cell.ok());
    return std::move(*cell);
  }

  SimulatedClock clock_;
  NetworkFaultInjector injector_{NetworkFaultConfig{}};  // Clean by default.
  cloud::CloudInfrastructure cloud_;
  cell::CellDirectory directory_;
  // Declared last: the harness's server must stop dispatching onto cloud_
  // before cloud_ is destroyed.
  std::unique_ptr<rpc::WireHarness> wire_;
};

TEST_F(CellChaosTest, PartitionedCellKeepsWorkingAndCatchesUp) {
  auto gateway = MakeCell("alice-gateway", /*resilient=*/true);
  policy::Policy policy = cell::MakeOwnerPolicy("alice");

  // Pull the WAN cable, then store: the push cannot reach the provider.
  injector_.ForceOutage(true);
  auto doc_id = gateway->StoreDocument("tax return", "tax 2012",
                                       ToBytes("the document body"), policy);
  ASSERT_TRUE(doc_id.ok()) << doc_id.status().ToString();
  EXPECT_TRUE(gateway->degraded());
  EXPECT_GE(gateway->outbox_pending(), 1u);
  EXPECT_GE(gateway->stats().pushes_deferred, 1u);

  // Degraded reads: the queued sealed payload serves read-your-writes.
  auto fetched = gateway->FetchDocument(*doc_id);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, ToBytes("the document body"));

  // Updates while partitioned supersede the queued push (last-writer-wins
  // in the outbox: at most one pending record per blob).
  ASSERT_TRUE(gateway->UpdateDocument(*doc_id, ToBytes("amended body")).ok());
  EXPECT_EQ(*gateway->FetchDocument(*doc_id), ToBytes("amended body"));

  // Sync while partitioned queues the manifest too.
  ASSERT_TRUE(gateway->SyncPush().ok());
  const size_t pending_before = gateway->outbox_pending();
  EXPECT_GE(pending_before, 2u);  // Doc payload + manifest.

  // Catch-up against a dead provider reports kUnavailable and keeps the
  // queue intact.
  auto stalled = gateway->CatchUp();
  EXPECT_EQ(stalled.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(gateway->degraded());
  EXPECT_EQ(gateway->outbox_pending(), pending_before);

  // Plug the cable back in: catch-up drains, read-back-verifies and exits
  // degraded mode.
  injector_.ForceOutage(false);
  ASSERT_TRUE(gateway->CatchUp().ok());
  EXPECT_FALSE(gateway->degraded());
  EXPECT_EQ(gateway->outbox_pending(), 0u);
  EXPECT_GE(gateway->stats().catchup_drained, 2u);
  EXPECT_EQ(*gateway->FetchDocument(*doc_id), ToBytes("amended body"));

  // The drained state is real provider state: a sibling cell of the same
  // owner syncs it down and opens the payload.
  auto phone = MakeCell("alice-phone", /*resilient=*/false);
  ASSERT_TRUE(phone->SyncPull().ok());
  auto on_phone = phone->FetchDocument(*doc_id);
  ASSERT_TRUE(on_phone.ok()) << on_phone.status().ToString();
  EXPECT_EQ(*on_phone, ToBytes("amended body"));

  // No duplicate side-effects despite the deferred/replayed pushes.
  EXPECT_EQ(cloud_.blob_store().versions_created(),
            cloud_.blob_store().tokens_applied() +
                cloud_.blob_store().txn_writes_applied());
}

TEST_F(CellChaosTest, OutboxSurvivesLossyNetwork) {
  // A flaky (not dead) provider: pushes retry through and the cell never
  // needs its outbox, or defers and later catches up — either way the
  // document is durable and exactly-once.
  NetworkFaultConfig config = NetworkFaultConfig::Lossy(0.3, 4242);
  NetworkFaultInjector lossy(config);
  cloud_.set_fault_injector(&lossy);

  auto gateway = MakeCell("alice-lossy", /*resilient=*/true);
  policy::Policy policy = cell::MakeOwnerPolicy("alice");
  std::vector<std::string> doc_ids;
  for (int i = 0; i < 10; ++i) {
    auto doc_id = gateway->StoreDocument(
        "doc" + std::to_string(i), "chaos",
        ToBytes("body" + std::to_string(i)), policy);
    ASSERT_TRUE(doc_id.ok()) << doc_id.status().ToString();
    doc_ids.push_back(*doc_id);
  }
  // Drain whatever the lossy network deferred.
  for (int attempt = 0; attempt < 50 && gateway->outbox_pending() > 0;
       ++attempt) {
    (void)gateway->CatchUp();
  }
  EXPECT_EQ(gateway->outbox_pending(), 0u);
  EXPECT_FALSE(gateway->degraded());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*gateway->FetchDocument(doc_ids[i]),
              ToBytes("body" + std::to_string(i)));
  }
  EXPECT_EQ(cloud_.blob_store().versions_created(),
            cloud_.blob_store().tokens_applied() +
                cloud_.blob_store().txn_writes_applied());
}

}  // namespace
}  // namespace tc
