#include <gtest/gtest.h>

#include "tc/cloud/infrastructure.h"

namespace tc::cloud {
namespace {

TEST(BlobStoreTest, VersionedPuts) {
  BlobStore store;
  EXPECT_EQ(store.Put("a", ToBytes("v1")), 1u);
  EXPECT_EQ(store.Put("a", ToBytes("v2")), 2u);
  EXPECT_EQ(*store.Get("a"), ToBytes("v2"));
  EXPECT_EQ(*store.GetVersion("a", 1), ToBytes("v1"));
  EXPECT_EQ(*store.LatestVersion("a"), 2u);
  EXPECT_FALSE(store.GetVersion("a", 3).ok());
  EXPECT_FALSE(store.Get("missing").ok());
}

TEST(BlobStoreTest, ListByPrefix) {
  BlobStore store;
  store.Put("space/alice/doc/1", {1});
  store.Put("space/alice/doc/2", {2});
  store.Put("space/bob/doc/1", {3});
  auto alice = store.List("space/alice/");
  EXPECT_EQ(alice.size(), 2u);
  EXPECT_EQ(store.List("space/").size(), 3u);
  EXPECT_TRUE(store.List("nope/").empty());
}

TEST(BlobStoreTest, DeleteAndAccounting) {
  BlobStore store;
  store.Put("a", Bytes(100));
  store.Put("a", Bytes(50));
  EXPECT_EQ(store.total_bytes(), 150u);
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_FALSE(store.Delete("a").ok());
}

TEST(CloudTest, HonestMessaging) {
  CloudInfrastructure cloud;
  cloud.Send("alice", "bob", "greeting", ToBytes("hi"));
  cloud.Send("alice", "bob", "greeting", ToBytes("again"));
  cloud.Send("alice", "carol", "greeting", ToBytes("yo"));
  EXPECT_EQ(cloud.PendingCount("bob"), 2u);
  auto messages = cloud.Receive("bob");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].from, "alice");
  EXPECT_EQ(messages[0].topic, "greeting");
  EXPECT_EQ(ToString(messages[0].payload), "hi");
  EXPECT_TRUE(cloud.Receive("bob").empty());
  EXPECT_EQ(cloud.Receive("carol").size(), 1u);
  EXPECT_EQ(cloud.stats().messages_sent, 3u);
  EXPECT_EQ(cloud.stats().messages_delivered, 3u);
}

TEST(CloudTest, HonestBlobsAreFaithful) {
  CloudInfrastructure cloud;
  Bytes data = ToBytes("sealed payload");
  cloud.PutBlob("x", data);
  EXPECT_EQ(*cloud.GetBlob("x"), data);
  EXPECT_TRUE(cloud.BlobExists("x"));
  EXPECT_EQ(cloud.adversary_stats().reads_tampered, 0u);
}

TEST(CloudTest, TamperingAdversaryCorruptsReads) {
  AdversaryConfig adversary;
  adversary.tamper_read_prob = 1.0;
  CloudInfrastructure cloud(adversary);
  Bytes data(100, 0x55);
  cloud.PutBlob("x", data);
  Bytes read = *cloud.GetBlob("x");
  EXPECT_NE(read, data);
  EXPECT_EQ(cloud.adversary_stats().reads_tampered, 1u);
  // The stored blob itself is intact; only reads are corrupted.
  adversary.tamper_read_prob = 0;
  cloud.set_adversary(adversary);
  EXPECT_EQ(*cloud.GetBlob("x"), data);
}

TEST(CloudTest, RollbackAdversaryServesStaleVersions) {
  AdversaryConfig adversary;
  adversary.rollback_read_prob = 1.0;
  CloudInfrastructure cloud(adversary);
  cloud.PutBlob("x", ToBytes("v1"));
  cloud.PutBlob("x", ToBytes("v2"));
  cloud.PutBlob("x", ToBytes("v3"));
  Bytes read = *cloud.GetBlob("x");
  EXPECT_NE(read, ToBytes("v3"));
  EXPECT_GE(cloud.adversary_stats().reads_rolled_back, 1u);
  // Single-version blobs cannot be rolled back.
  cloud.PutBlob("y", ToBytes("only"));
  EXPECT_EQ(*cloud.GetBlob("y"), ToBytes("only"));
}

TEST(CloudTest, DroppingAdversaryLosesMessages) {
  AdversaryConfig adversary;
  adversary.drop_message_prob = 1.0;
  CloudInfrastructure cloud(adversary);
  cloud.Send("a", "b", "t", ToBytes("gone"));
  EXPECT_TRUE(cloud.Receive("b").empty());
  EXPECT_EQ(cloud.adversary_stats().messages_dropped, 1u);
}

TEST(CloudTest, ReplayAdversaryRedeliversOldMessages) {
  AdversaryConfig adversary;
  adversary.replay_message_prob = 1.0;
  adversary.seed = 3;
  CloudInfrastructure cloud(adversary);
  cloud.Send("a", "b", "t", ToBytes("m1"));
  auto first = cloud.Receive("b");
  ASSERT_EQ(first.size(), 1u);
  // Next receive has nothing pending but the adversary replays m1.
  auto replayed = cloud.Receive("b");
  ASSERT_GE(replayed.size(), 1u);
  EXPECT_EQ(ToString(replayed[0].payload), "m1");
  EXPECT_GE(cloud.adversary_stats().messages_replayed, 1u);
}

TEST(CloudTest, ProbabilisticAdversaryRatesRoughlyMatch) {
  AdversaryConfig adversary;
  adversary.tamper_read_prob = 0.2;
  adversary.seed = 11;
  CloudInfrastructure cloud(adversary);
  cloud.PutBlob("x", Bytes(64, 1));
  const int n = 2000;
  for (int i = 0; i < n; ++i) (void)cloud.GetBlob("x");
  double rate =
      static_cast<double>(cloud.adversary_stats().reads_tampered) / n;
  EXPECT_NEAR(rate, 0.2, 0.04);
}

}  // namespace
}  // namespace tc::cloud
