#include <gtest/gtest.h>

#include "tc/cloud/infrastructure.h"

namespace tc::cloud {
namespace {

TEST(BlobStoreTest, VersionedPuts) {
  BlobStore store;
  EXPECT_EQ(store.Put("a", ToBytes("v1")), 1u);
  EXPECT_EQ(store.Put("a", ToBytes("v2")), 2u);
  EXPECT_EQ(*store.Get("a"), ToBytes("v2"));
  EXPECT_EQ(*store.GetVersion("a", 1), ToBytes("v1"));
  EXPECT_EQ(*store.LatestVersion("a"), 2u);
  EXPECT_FALSE(store.GetVersion("a", 3).ok());
  EXPECT_FALSE(store.Get("missing").ok());
}

TEST(BlobStoreTest, ListByPrefix) {
  BlobStore store;
  store.Put("space/alice/doc/1", {1});
  store.Put("space/alice/doc/2", {2});
  store.Put("space/bob/doc/1", {3});
  auto alice = store.List("space/alice/");
  EXPECT_EQ(alice.size(), 2u);
  EXPECT_EQ(store.List("space/").size(), 3u);
  EXPECT_TRUE(store.List("nope/").empty());
}

TEST(BlobStoreTest, DeleteAndAccounting) {
  BlobStore store;
  store.Put("a", Bytes(100));
  store.Put("a", Bytes(50));
  EXPECT_EQ(store.total_bytes(), 150u);
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_FALSE(store.Delete("a").ok());
}

TEST(BlobStoreTest, TotalBytesPinnedThroughPutPutDelete) {
  // Pins the byte accounting through a full Put/Put/Delete cycle, with an
  // unrelated blob alive to catch over-subtraction: deleting a blob must
  // remove the bytes of *all* its versions, and only those.
  BlobStore store;
  store.Put("other", Bytes(7));
  EXPECT_EQ(store.total_bytes(), 7u);
  store.Put("a", Bytes(100));
  EXPECT_EQ(store.total_bytes(), 107u);
  store.Put("a", Bytes(50));
  EXPECT_EQ(store.total_bytes(), 157u);
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.total_bytes(), 7u);
  EXPECT_EQ(store.blob_count(), 1u);
}

TEST(BlobStoreTest, MutateLatestKeepsAccountingInSync) {
  // The old raw-pointer accessor (MutableLatest) let the adversary resize a
  // payload behind the store's back, silently corrupting total_bytes().
  BlobStore store;
  store.Put("a", Bytes(100, 0xAA));
  store.Put("a", Bytes(60, 0xBB));
  ASSERT_EQ(store.total_bytes(), 160u);
  // In-place flip: size unchanged.
  ASSERT_TRUE(store.MutateLatest("a", [](Bytes& b) { b[0] ^= 0xFF; }).ok());
  EXPECT_EQ(store.total_bytes(), 160u);
  // Truncation: accounting follows.
  ASSERT_TRUE(store.MutateLatest("a", [](Bytes& b) { b.resize(10); }).ok());
  EXPECT_EQ(store.total_bytes(), 110u);
  // Growth: accounting follows.
  ASSERT_TRUE(
      store.MutateLatest("a", [](Bytes& b) { b.resize(200, 0xCC); }).ok());
  EXPECT_EQ(store.total_bytes(), 300u);
  // Only the latest version is touched.
  EXPECT_EQ(store.GetVersion("a", 1)->size(), 100u);
  // Delete after mutation subtracts the *current* sizes exactly.
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_FALSE(store.MutateLatest("missing", [](Bytes&) {}).ok());
}

TEST(BlobStoreTest, ShardedStoreBehavesLikeOneStore) {
  // Same operation sequence against 1 shard and 13 shards (coprime with
  // nothing in particular) must be observationally identical.
  BlobStore one(1);
  BlobStore many(13);
  for (int i = 0; i < 200; ++i) {
    std::string id = "space/cell" + std::to_string(i % 17) + "/doc" +
                     std::to_string(i);
    for (BlobStore* store : {&one, &many}) store->Put(id, Bytes(i % 32, 1));
  }
  EXPECT_EQ(one.blob_count(), many.blob_count());
  EXPECT_EQ(one.total_bytes(), many.total_bytes());
  EXPECT_EQ(one.List("space/cell7/"), many.List("space/cell7/"));
  EXPECT_EQ(one.List(""), many.List(""));
}

TEST(BlobStoreTest, PutBatchAssignsVersionsInInputOrder) {
  BlobStore store(4);
  std::vector<std::pair<std::string, Bytes>> batch;
  for (int i = 0; i < 10; ++i) batch.emplace_back("k", Bytes{uint8_t(i)});
  std::vector<uint64_t> versions = store.PutBatch(batch);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(versions[i], uint64_t(i) + 1);
  EXPECT_EQ(*store.Get("k"), Bytes{uint8_t(9)});
  EXPECT_EQ(store.total_bytes(), 10u);
}

TEST(BlobStoreTest, TokenEvictionReDeliveryStaysConvergent) {
  // Regression for the FIFO idempotency-token window: a re-delivery whose
  // token was evicted is applied again, and the DOCUMENTED bound is that
  // this appends a duplicate version with identical bytes — the
  // convergence audit (latest payload per blob) must be unaffected, and a
  // within-window re-delivery must still dedupe exactly.
  BlobStore store(/*shard_count=*/1, /*token_history=*/4);
  const Bytes payload = ToBytes("sealed, attempt-stable bytes");

  std::vector<uint64_t> first =
      store.PutBatchIdempotent({{"doc", payload}}, {"cell|doc|v1"});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 1u);

  // Within the window: the duplicate is answered from the table — same
  // version, no new state.
  std::vector<uint64_t> duped =
      store.PutBatchIdempotent({{"doc", payload}}, {"cell|doc|v1"});
  EXPECT_EQ(duped[0], 1u);
  EXPECT_EQ(store.token_dedupe_hits(), 1u);
  EXPECT_EQ(*store.LatestVersion("doc"), 1u);

  // Push four unrelated tokens through the single shard: FIFO capacity is
  // 4, so "cell|doc|v1" is evicted.
  for (int i = 0; i < 4; ++i) {
    store.PutBatchIdempotent({{"other", ToBytes("x")}},
                             {"cell|other|v" + std::to_string(i + 1)});
  }

  // Post-eviction re-delivery: applied as a fresh write. The bound we
  // document — and must not silently widen — is ONE duplicate version,
  // byte-identical to the acked one, leaving the latest payload (what the
  // convergence audit compares) unchanged.
  std::vector<uint64_t> late =
      store.PutBatchIdempotent({{"doc", payload}}, {"cell|doc|v1"});
  EXPECT_EQ(late[0], 2u);
  EXPECT_EQ(store.token_dedupe_hits(), 1u);  // Not a table hit.
  EXPECT_EQ(*store.LatestVersion("doc"), 2u);
  EXPECT_EQ(*store.GetVersion("doc", 1), payload);
  EXPECT_EQ(*store.GetVersion("doc", 2), payload);  // Identical bytes.
  EXPECT_EQ(*store.Get("doc"), payload);  // Convergence audit unaffected.

  // Accounting: the evicted re-delivery counts as a fresh applied token,
  // so the versions == tokens + txn-writes invariant still balances.
  EXPECT_EQ(store.versions_created(),
            store.tokens_applied() + store.txn_writes_applied());
}

TEST(CloudTest, HonestMessaging) {
  CloudInfrastructure cloud;
  cloud.Send("alice", "bob", "greeting", ToBytes("hi"));
  cloud.Send("alice", "bob", "greeting", ToBytes("again"));
  cloud.Send("alice", "carol", "greeting", ToBytes("yo"));
  EXPECT_EQ(cloud.PendingCount("bob"), 2u);
  auto messages = cloud.Receive("bob");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].from, "alice");
  EXPECT_EQ(messages[0].topic, "greeting");
  EXPECT_EQ(ToString(messages[0].payload), "hi");
  EXPECT_TRUE(cloud.Receive("bob").empty());
  EXPECT_EQ(cloud.Receive("carol").size(), 1u);
  EXPECT_EQ(cloud.stats().messages_sent, 3u);
  EXPECT_EQ(cloud.stats().messages_delivered, 3u);
}

TEST(CloudTest, HonestBlobsAreFaithful) {
  CloudInfrastructure cloud;
  Bytes data = ToBytes("sealed payload");
  cloud.PutBlob("x", data);
  EXPECT_EQ(*cloud.GetBlob("x"), data);
  EXPECT_TRUE(cloud.BlobExists("x"));
  EXPECT_EQ(cloud.adversary_stats().reads_tampered, 0u);
}

TEST(CloudTest, TamperingAdversaryCorruptsReads) {
  AdversaryConfig adversary;
  adversary.tamper_read_prob = 1.0;
  CloudInfrastructure cloud(adversary);
  Bytes data(100, 0x55);
  cloud.PutBlob("x", data);
  Bytes read = *cloud.GetBlob("x");
  EXPECT_NE(read, data);
  EXPECT_EQ(cloud.adversary_stats().reads_tampered, 1u);
  // The stored blob itself is intact; only reads are corrupted.
  adversary.tamper_read_prob = 0;
  cloud.set_adversary(adversary);
  EXPECT_EQ(*cloud.GetBlob("x"), data);
}

TEST(CloudTest, RollbackAdversaryServesStaleVersions) {
  AdversaryConfig adversary;
  adversary.rollback_read_prob = 1.0;
  CloudInfrastructure cloud(adversary);
  cloud.PutBlob("x", ToBytes("v1"));
  cloud.PutBlob("x", ToBytes("v2"));
  cloud.PutBlob("x", ToBytes("v3"));
  Bytes read = *cloud.GetBlob("x");
  EXPECT_NE(read, ToBytes("v3"));
  EXPECT_GE(cloud.adversary_stats().reads_rolled_back, 1u);
  // Single-version blobs cannot be rolled back.
  cloud.PutBlob("y", ToBytes("only"));
  EXPECT_EQ(*cloud.GetBlob("y"), ToBytes("only"));
}

TEST(CloudTest, DroppingAdversaryLosesMessages) {
  AdversaryConfig adversary;
  adversary.drop_message_prob = 1.0;
  CloudInfrastructure cloud(adversary);
  cloud.Send("a", "b", "t", ToBytes("gone"));
  EXPECT_TRUE(cloud.Receive("b").empty());
  EXPECT_EQ(cloud.adversary_stats().messages_dropped, 1u);
}

TEST(CloudTest, ReplayAdversaryRedeliversOldMessages) {
  AdversaryConfig adversary;
  adversary.replay_message_prob = 1.0;
  adversary.seed = 3;
  CloudInfrastructure cloud(adversary);
  cloud.Send("a", "b", "t", ToBytes("m1"));
  auto first = cloud.Receive("b");
  ASSERT_EQ(first.size(), 1u);
  // Next receive has nothing pending but the adversary replays m1.
  auto replayed = cloud.Receive("b");
  ASSERT_GE(replayed.size(), 1u);
  EXPECT_EQ(ToString(replayed[0].payload), "m1");
  EXPECT_GE(cloud.adversary_stats().messages_replayed, 1u);
}

TEST(CloudTest, AdversaryIsDeterministicForAFixedSeed) {
  // Regression: the same AdversaryConfig::seed must yield bit-identical
  // AdversaryStats across two single-threaded runs of the same workload.
  // (Multi-threaded runs are deterministic *per shard*: each shard owns an
  // RNG stream keyed by seed+shard, so only the operation order within one
  // shard — never cross-shard interleaving — affects its draws.)
  auto run = [] {
    AdversaryConfig adversary;
    adversary.tamper_read_prob = 0.3;
    adversary.rollback_read_prob = 0.3;
    adversary.drop_message_prob = 0.25;
    adversary.replay_message_prob = 0.25;
    adversary.seed = 99;
    CloudInfrastructure cloud(adversary);
    Rng workload(5);
    for (int i = 0; i < 500; ++i) {
      std::string key = "k" + std::to_string(workload.NextBelow(8));
      cloud.PutBlob(key, workload.NextBytes(24));
      (void)cloud.GetBlob(key);
      std::string to = "cell" + std::to_string(workload.NextBelow(4));
      cloud.Send("sender", to, "t", workload.NextBytes(8));
      (void)cloud.Receive(to);
    }
    return cloud.adversary_stats();
  };
  AdversaryStats first = run();
  AdversaryStats second = run();
  EXPECT_GT(first.reads_tampered, 0u);
  EXPECT_GT(first.reads_rolled_back, 0u);
  EXPECT_GT(first.messages_dropped, 0u);
  EXPECT_GT(first.messages_replayed, 0u);
  EXPECT_EQ(first.reads_tampered, second.reads_tampered);
  EXPECT_EQ(first.reads_rolled_back, second.reads_rolled_back);
  EXPECT_EQ(first.messages_dropped, second.messages_dropped);
  EXPECT_EQ(first.messages_replayed, second.messages_replayed);
}

TEST(CloudTest, ProbabilisticAdversaryRatesRoughlyMatch) {
  AdversaryConfig adversary;
  adversary.tamper_read_prob = 0.2;
  adversary.seed = 11;
  CloudInfrastructure cloud(adversary);
  cloud.PutBlob("x", Bytes(64, 1));
  const int n = 2000;
  for (int i = 0; i < n; ++i) (void)cloud.GetBlob("x");
  double rate =
      static_cast<double>(cloud.adversary_stats().reads_tampered) / n;
  EXPECT_NEAR(rate, 0.2, 0.04);
}

}  // namespace
}  // namespace tc::cloud
