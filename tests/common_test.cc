#include <gtest/gtest.h>

#include <cmath>

#include "tc/common/bytes.h"
#include "tc/common/clock.h"
#include "tc/common/codec.h"
#include "tc/common/result.h"
#include "tc/common/rng.h"
#include "tc/common/status.h"

namespace tc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such record");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such record");
  EXPECT_EQ(s.ToString(), "NotFound: no such record");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::PermissionDenied("nope");
  Status t = s;
  EXPECT_TRUE(t.IsPermissionDenied());
  EXPECT_EQ(s, t);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  TC_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::NotFound("x")).status().code(),
            StatusCode::kNotFound);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(HexEncode(b), "00deadbeefff");
  auto decoded = HexDecode("00deadbeefff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, b);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // Odd length.
  EXPECT_FALSE(HexDecode("zz").ok());    // Non-hex.
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abc")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abd")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abcd")));
}

TEST(CodecTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU16(65535);
  w.PutU32(123456789);
  w.PutU64(0xdeadbeefcafebabeULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutVarint(300);
  w.PutBytes({1, 2, 3});
  w.PutString("hello");
  w.PutBool(true);
  Bytes buf = w.Take();

  BinaryReader r(buf);
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU16(), 65535);
  EXPECT_EQ(*r.GetU32(), 123456789u);
  EXPECT_EQ(*r.GetU64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetVarint(), 300u);
  EXPECT_EQ(*r.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_TRUE(*r.GetBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, TruncationIsCorruption) {
  BinaryWriter w;
  w.PutU64(1);
  Bytes buf = w.Take();
  buf.resize(4);
  BinaryReader r(buf);
  EXPECT_EQ(r.GetU64().status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     0xffffffffULL, 0xffffffffffffffffULL}) {
    BinaryWriter w;
    w.PutVarint(v);
    BinaryReader r(w.buffer());
    EXPECT_EQ(*r.GetVarint(), v);
  }
}

TEST(CodecTest, BytesLengthLieDetected) {
  BinaryWriter w;
  w.PutVarint(100);  // Claims 100 bytes follow...
  w.PutU8(1);        // ...but only one does.
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetBytes().status().code(), StatusCode::kCorruption);
}

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.Now(), 1000);
  clock.Advance(360);
  EXPECT_EQ(clock.Now(), 1360);
}

TEST(ClockTest, WindowStartAligns) {
  EXPECT_EQ(WindowStart(0, 900), 0);
  EXPECT_EQ(WindowStart(899, 900), 0);
  EXPECT_EQ(WindowStart(900, 900), 900);
  EXPECT_EQ(WindowStart(1000, 900), 900);
}

TEST(ClockTest, CalendarHelpers) {
  // 2012-07-15 12:00:00 UTC.
  Timestamp t = MakeTimestamp(2012, 7, 15, 12, 0, 0);
  EXPECT_EQ(YearOf(t), 2012);
  EXPECT_EQ(MonthIndex(t), (2012 - 1970) * 12 + 6);
  EXPECT_EQ(FormatTimestamp(t), "2012-07-15 12:00:00");
  // Known anchor: 2000-01-01 is 10957 days after the epoch.
  EXPECT_EQ(DayIndex(MakeTimestamp(2000, 1, 1)), 10957);
  EXPECT_EQ(MakeTimestamp(1970, 1, 1), 0);
}

TEST(ClockTest, MonthBoundary) {
  Timestamp end_of_jan = MakeTimestamp(2013, 1, 31, 23, 59, 59);
  Timestamp start_of_feb = MakeTimestamp(2013, 2, 1, 0, 0, 0);
  EXPECT_EQ(start_of_feb - end_of_jan, 1);
  EXPECT_EQ(MonthIndex(start_of_feb) - MonthIndex(end_of_jan), 1);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, LaplaceIsSymmetricWithExpectedScale) {
  Rng rng(13);
  const int n = 50000;
  const double scale = 2.5;
  double sum = 0, abs_sum = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextLaplace(scale);
    sum += v;
    abs_sum += std::fabs(v);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  // E|X| = scale for Laplace(0, scale).
  EXPECT_NEAR(abs_sum / n, scale, 0.1);
}

TEST(RngTest, BytesLengthAndDeterminism) {
  Rng a(5), b(5);
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 100u}) {
    Bytes x = a.NextBytes(len);
    EXPECT_EQ(x.size(), len);
    EXPECT_EQ(x, b.NextBytes(len));
  }
}

}  // namespace
}  // namespace tc
