#include <gtest/gtest.h>

#include <numeric>

#include "tc/compute/dp.h"
#include "tc/compute/kanon.h"
#include "tc/compute/secure_aggregation.h"

namespace tc::compute {
namespace {

std::vector<int64_t> TestValues(int n, uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<int64_t> values(n);
  for (auto& v : values) v = rng.NextInt(0, 50000);  // Wh-scale values.
  return values;
}

int64_t Sum(const std::vector<int64_t>& v) {
  return std::accumulate(v.begin(), v.end(), int64_t{0});
}

TEST(SecureAggregationTest, CleartextBaselineSums) {
  cloud::CloudInfrastructure cloud;
  auto values = TestValues(20);
  auto outcome = SecureAggregation::RunCleartext(cloud, values);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->sum, Sum(values));
  EXPECT_EQ(outcome->contributors, 20);
  EXPECT_FALSE(outcome->privacy_preserving);
}

TEST(SecureAggregationTest, MaskingExactWithoutDropouts) {
  cloud::CloudInfrastructure cloud;
  auto values = TestValues(16);
  auto channels = SecureAggregation::PairwiseChannels::Setup(
      16, /*use_real_dh=*/false, 1);
  Rng rng(2);
  auto outcome = SecureAggregation::RunAdditiveMasking(cloud, values, channels,
                                                       /*round=*/1, 0.0, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->sum, Sum(values));
  EXPECT_EQ(outcome->contributors, 16);
  EXPECT_EQ(outcome->dropouts, 0);
  EXPECT_TRUE(outcome->privacy_preserving);
}

TEST(SecureAggregationTest, MaskingWithRealDhChannels) {
  cloud::CloudInfrastructure cloud;
  auto values = TestValues(6);
  auto channels =
      SecureAggregation::PairwiseChannels::Setup(6, /*use_real_dh=*/true, 1);
  Rng rng(3);
  auto outcome = SecureAggregation::RunAdditiveMasking(cloud, values, channels,
                                                       7, 0.0, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->sum, Sum(values));
}

TEST(SecureAggregationTest, MaskingRepairsDropouts) {
  auto values = TestValues(24);
  auto channels = SecureAggregation::PairwiseChannels::Setup(24, false, 1);
  // Several dropout rates; the repaired sum must equal the sum over the
  // cells that actually contributed.
  for (double rate : {0.1, 0.3, 0.5}) {
    cloud::CloudInfrastructure cloud;
    Rng rng(static_cast<uint64_t>(rate * 100) + 5);
    auto outcome = SecureAggregation::RunAdditiveMasking(
        cloud, values, channels, 1, rate, rng);
    ASSERT_TRUE(outcome.ok()) << rate;
    EXPECT_EQ(outcome->contributors + outcome->dropouts, 24);
    // We can't know which cells dropped from outside, but the sum must be
    // a sum of a subset — verify via the protocol's own bookkeeping:
    // contributors * min <= sum <= contributors * max.
    EXPECT_GE(outcome->sum, 0);
    EXPECT_LE(outcome->sum, Sum(values));
    if (outcome->dropouts == 0) EXPECT_EQ(outcome->sum, Sum(values));
  }
}

TEST(SecureAggregationTest, MaskingDeterministicDropoutExactness) {
  // Force a deterministic dropout pattern by running masking manually:
  // with rate 1.0 everything drops and the protocol reports Unavailable.
  auto values = TestValues(8);
  auto channels = SecureAggregation::PairwiseChannels::Setup(8, false, 1);
  cloud::CloudInfrastructure cloud;
  Rng rng(1);
  auto outcome = SecureAggregation::RunAdditiveMasking(cloud, values, channels,
                                                       1, 1.0, rng);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST(SecureAggregationTest, MaskedMessagesLookRandom) {
  // The infrastructure must not learn values: the masked payload of a
  // cell differs from its value (and changes across rounds).
  auto values = TestValues(4);
  auto channels = SecureAggregation::PairwiseChannels::Setup(4, false, 1);
  cloud::CloudInfrastructure cloud1, cloud2;
  Rng rng1(1), rng2(1);
  (void)SecureAggregation::RunAdditiveMasking(cloud1, values, channels, 1, 0,
                                              rng1);
  (void)SecureAggregation::RunAdditiveMasking(cloud2, values, channels, 2, 0,
                                              rng2);
  // Rounds use different masks => different traffic for same values.
  EXPECT_NE(cloud1.stats().bytes_in, 0u);
  // (Indirect check: both runs succeed and sums agree.)
}

TEST(SecureAggregationTest, PaillierExactAndCloudFolds) {
  cloud::CloudInfrastructure cloud;
  auto values = TestValues(10);
  Rng rng(4);
  auto outcome =
      SecureAggregation::RunPaillier(cloud, values, 512, 0.0, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->sum, Sum(values));
  EXPECT_TRUE(outcome->privacy_preserving);
  // Traffic: one ciphertext per cell plus the folded result.
  EXPECT_EQ(outcome->messages, 11u);
}

TEST(SecureAggregationTest, PaillierWithDropouts) {
  cloud::CloudInfrastructure cloud;
  auto values = TestValues(20);
  Rng rng(9);
  auto outcome = SecureAggregation::RunPaillier(cloud, values, 512, 0.3, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->contributors + outcome->dropouts, 20);
  EXPECT_LE(outcome->sum, Sum(values));
}

TEST(SecureAggregationTest, PaillierRejectsNegativeValues) {
  cloud::CloudInfrastructure cloud;
  Rng rng(1);
  auto outcome =
      SecureAggregation::RunPaillier(cloud, {5, -3}, 512, 0.0, rng);
  EXPECT_FALSE(outcome.ok());
}

TEST(SecureAggregationTest, TrafficScalesWithSchemes) {
  auto values = TestValues(32);
  cloud::CloudInfrastructure c1, c2, c3;
  Rng r1(1), r2(1), r3(1);
  auto channels = SecureAggregation::PairwiseChannels::Setup(32, false, 1);
  auto clear = *SecureAggregation::RunCleartext(c1, values);
  auto masked = *SecureAggregation::RunAdditiveMasking(c2, values, channels,
                                                       1, 0, r1);
  auto paillier = *SecureAggregation::RunPaillier(c3, values, 512, 0, r2);
  // Paillier ciphertexts are ~128x larger than 8-byte cleartext payloads.
  EXPECT_GT(paillier.bytes, clear.bytes * 10);
  // Masking without dropouts sends the same number of messages as clear.
  EXPECT_EQ(masked.messages, clear.messages);
}

TEST(DpTest, LaplaceMechanismIsUnbiased) {
  Rng rng(6);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += *DifferentialPrivacy::LaplaceMechanism(100.0, 1.0, 0.5, rng);
  }
  EXPECT_NEAR(sum / n, 100.0, 0.2);
}

TEST(DpTest, SmallerEpsilonMoreNoise) {
  Rng rng(7);
  const int n = 5000;
  double err_tight = 0, err_loose = 0;
  for (int i = 0; i < n; ++i) {
    err_tight += std::abs(
        *DifferentialPrivacy::LaplaceMechanism(0.0, 1.0, 1.0, rng));
    err_loose += std::abs(
        *DifferentialPrivacy::LaplaceMechanism(0.0, 1.0, 0.1, rng));
  }
  EXPECT_GT(err_loose, err_tight * 5);
}

TEST(DpTest, LocalModelNoisierThanCentral) {
  Rng rng(8);
  std::vector<double> values(100, 10.0);
  double exact = 1000.0;
  const int trials = 200;
  double central_err = 0, local_err = 0;
  for (int t = 0; t < trials; ++t) {
    central_err += std::abs(
        *DifferentialPrivacy::PerturbSum(values, 1.0, 0.5, rng) - exact);
    auto noisy = *DifferentialPrivacy::LocalPerturb(values, 1.0, 0.5, rng);
    double s = 0;
    for (double v : noisy) s += v;
    local_err += std::abs(s - exact);
  }
  EXPECT_GT(local_err, central_err * 3);
}

TEST(DpTest, InvalidParametersRejected) {
  Rng rng(1);
  EXPECT_FALSE(DifferentialPrivacy::LaplaceMechanism(0, 1.0, 0, rng).ok());
  EXPECT_FALSE(DifferentialPrivacy::LaplaceMechanism(0, -1.0, 1, rng).ok());
}

TEST(DpTest, PrivacyBudgetEnforced) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Consume(0.4).ok());
  EXPECT_TRUE(budget.Consume(0.6).ok());
  EXPECT_TRUE(budget.Consume(0.1).IsResourceExhausted());
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-9);
  EXPECT_FALSE(budget.Consume(-1).ok());
}

std::vector<MicroRecord> Cohort() {
  std::vector<MicroRecord> records;
  Rng rng(10);
  const char* diseases[] = {"flu", "diabetes", "asthma", "none"};
  for (int i = 0; i < 200; ++i) {
    MicroRecord r;
    r.age = static_cast<int>(rng.NextInt(18, 90));
    r.zip = "75" + std::to_string(rng.NextInt(100, 120));
    r.sensitive = diseases[rng.NextBelow(4)];
    records.push_back(r);
  }
  return records;
}

TEST(KAnonTest, AchievesRequestedK) {
  auto records = Cohort();
  for (int k : {2, 5, 10, 25}) {
    auto report = KAnonymizer::Anonymize(records, k);
    ASSERT_TRUE(report.ok()) << k;
    EXPECT_TRUE(KAnonymizer::IsKAnonymous(report->records, k));
    EXPECT_EQ(report->records.size(), records.size());
  }
}

TEST(KAnonTest, InfoLossGrowsWithK) {
  auto records = Cohort();
  double prev_loss = -1;
  for (int k : {2, 10, 50}) {
    auto report = KAnonymizer::Anonymize(records, k);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->info_loss, prev_loss);
    prev_loss = report->info_loss;
  }
}

TEST(KAnonTest, SensitiveValuesPreserved) {
  auto records = Cohort();
  auto report = KAnonymizer::Anonymize(records, 5);
  ASSERT_TRUE(report.ok());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(report->records[i].sensitive, records[i].sensitive);
  }
}

TEST(KAnonTest, RefusesUndersizedCohort) {
  std::vector<MicroRecord> few = {{30, "75001", "flu"}, {40, "75002", "none"}};
  EXPECT_EQ(KAnonymizer::Anonymize(few, 5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(KAnonymizer::Anonymize({}, 2).ok());
  EXPECT_FALSE(KAnonymizer::Anonymize(few, 0).ok());
}

TEST(KAnonTest, GeneralizationRendering) {
  EXPECT_EQ(KAnonymizer::GeneralizeAge(37, 10), "[30-39]");
  EXPECT_EQ(KAnonymizer::GeneralizeAge(37, 1), "37");
  EXPECT_EQ(KAnonymizer::GeneralizeAge(37, 0), "*");
  EXPECT_EQ(KAnonymizer::GeneralizeZip("75011", 3), "750**");
  EXPECT_EQ(KAnonymizer::GeneralizeZip("75011", 5), "75011");
  EXPECT_EQ(KAnonymizer::GeneralizeZip("75011", 0), "*****");
}

}  // namespace
}  // namespace tc::compute
