// Crash-point enumeration over the trusted-cell storage stack: a mixed
// Put/Delete/GC workload is killed at *every* write step (clean-cut and
// torn-page variants) across the three paper device classes, and the
// durability invariants are checked after every recovery. See
// tc/testing/crash_point_runner.h for the invariants.

#include <gtest/gtest.h>

#include <memory>

#include "tc/obs/flight_recorder.h"
#include "tc/storage/flash_device.h"
#include "tc/storage/log_store.h"
#include "tc/storage/page_transform.h"
#include "tc/tee/tee.h"
#include "tc/testing/crash_point_runner.h"
#include "tc/testing/fault_injection.h"

namespace tc::testing {
namespace {

storage::FlashGeometry TinyGeometry() {
  // Small enough that the 200-op workload wraps the log several times and
  // garbage collection runs inside the crash window.
  storage::FlashGeometry geo;
  geo.page_size = 256;
  geo.pages_per_block = 4;
  geo.block_count = 8;
  return geo;
}

MixedWorkloadOptions WorkloadOptions(uint64_t seed) {
  MixedWorkloadOptions options;
  options.ops = 200;
  options.key_space = 12;
  options.value_min = 8;
  options.value_max = 40;
  options.delete_fraction = 0.25;
  options.flush_fraction = 0.12;
  options.seed = seed;
  return options;
}

struct DeviceClassCase {
  const char* name;
  size_t ram_budget;  // Index RAM: token degrades to a partial index.
  uint64_t seed;
};

// The three paper device classes: secure token (tiny RAM, partial index),
// smartphone, home gateway.
constexpr DeviceClassCase kCases[] = {
    {"token", 700, 11},
    {"phone", 16 << 10, 22},
    {"gateway", 1 << 20, 33},
};

TEST(CrashRecoveryTest, EveryCrashPointKeepsDurabilityInvariants) {
  obs::FlightRecorder::Global().Clear();
  size_t total_points = 0;
  size_t total_incident_trials = 0;
  for (const DeviceClassCase& device_case : kCases) {
    CrashPointRunner::Options options;
    options.geometry = TinyGeometry();
    options.store_options.ram_budget_bytes = device_case.ram_budget;
    options.seed = device_case.seed;
    CrashPointRunner runner(options, [] {
      return std::make_unique<storage::PlainPageTransform>();
    });
    auto report = runner.Run(MakeMixedWorkload(WorkloadOptions(
        device_case.seed)));
    ASSERT_TRUE(report.ok()) << device_case.name << ": "
                             << report.status().ToString();
    SCOPED_TRACE(device_case.name);
    // The enumeration must actually reach garbage collection, or the
    // GC-crash invariants are vacuous.
    EXPECT_GT(report->gc_runs, 0u);
    EXPECT_GT(report->erases, 0u);
    EXPECT_GT(report->crash_points, 50u);
    EXPECT_LE(report->max_pages_skipped, 1u);
    EXPECT_EQ(report->recovery_failures, 0u);
    EXPECT_EQ(report->violations, 0u)
        << "first violations: "
        << ::testing::PrintToString(report->violation_details);
    // Flight-recorder coverage: every crash trial whose recovery raised an
    // incident (skipped page) must have produced a dump.
    EXPECT_EQ(report->missing_flight_dumps, 0u);
    EXPECT_EQ(report->flight_dumps, report->incident_trials);
    total_points += report->crash_points;
    total_incident_trials += report->incident_trials;
  }
  // Acceptance floor for the whole sweep.
  EXPECT_GE(total_points, 200u);
  // Torn-page variants must actually raise incidents, or the flight-dump
  // coverage above is vacuous.
  EXPECT_GT(total_incident_trials, 0u);
  // The recorder kept the most recent dumps, and each captured usable
  // evidence: a recovery reason plus the metric registry snapshot.
  const auto dumps = obs::FlightRecorder::Global().Dumps();
  ASSERT_FALSE(dumps.empty());
  const obs::FlightDump& last = dumps.back();
  EXPECT_EQ(last.reason.rfind("recovery", 0), 0u) << last.reason;
  EXPECT_NE(last.ToJson().find("\"metrics\""), std::string::npos);
}

// The same enumeration through the TEE-keyed AEAD page transform: crash
// residue (torn pages) must surface as decode failures that recovery
// tolerates, never as silently wrong data.
TEST(CrashRecoveryTest, EncryptedStoreSurvivesEveryCrashPoint) {
  tee::TrustedExecutionEnvironment tee("crash-owner",
                                       tee::DeviceClass::kHomeGateway);
  ASSERT_TRUE(tee.keystore().GenerateKey("storage-root").ok());
  CrashPointRunner::Options options;
  options.geometry = TinyGeometry();
  options.seed = 44;
  CrashPointRunner runner(options, [&tee] {
    return std::make_unique<storage::EncryptedPageTransform>(&tee,
                                                             "storage-root");
  });
  MixedWorkloadOptions workload = WorkloadOptions(44);
  workload.ops = 120;  // AES per page: keep the sweep quick.
  auto report = runner.Run(MakeMixedWorkload(workload));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->crash_points, 40u);
  EXPECT_LE(report->max_pages_skipped, 1u);
  EXPECT_EQ(report->recovery_failures, 0u);
  EXPECT_EQ(report->violations, 0u)
      << "first violations: "
      << ::testing::PrintToString(report->violation_details);
  EXPECT_EQ(report->missing_flight_dumps, 0u);
  EXPECT_EQ(report->flight_dumps, report->incident_trials);
}

}  // namespace
}  // namespace tc::testing
