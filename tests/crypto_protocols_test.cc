#include <gtest/gtest.h>

#include "tc/crypto/dh.h"
#include "tc/crypto/group.h"
#include "tc/crypto/paillier.h"
#include "tc/crypto/schnorr.h"
#include "tc/crypto/shamir.h"

namespace tc::crypto {
namespace {

// The 512-bit standard group keeps the test suite fast; group-law validity
// is itself asserted below.

TEST(GroupTest, StandardGroupValidates) {
  const GroupParams& g = GroupParams::Standard(512);
  SecureRandom rng(ToBytes("group-validate"));
  EXPECT_TRUE(g.Validate(rng));
  EXPECT_EQ(g.p.BitLength(), 512u);
  EXPECT_EQ(g.q.BitLength(), 256u);
}

TEST(GroupTest, StandardGroupIsDeterministic) {
  const GroupParams& a = GroupParams::Standard(512);
  const GroupParams& b = GroupParams::Standard(512);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.g, b.g);
}

TEST(DhTest, SharedKeysAgree) {
  const GroupParams& g = GroupParams::Standard(512);
  DiffieHellman dh(g);
  SecureRandom rng_a(ToBytes("alice")), rng_b(ToBytes("bob"));
  DhKeyPair alice = dh.GenerateKeyPair(rng_a);
  DhKeyPair bob = dh.GenerateKeyPair(rng_b);
  auto k_ab = dh.ComputeSharedKey(alice.private_key, bob.public_key);
  auto k_ba = dh.ComputeSharedKey(bob.private_key, alice.public_key);
  ASSERT_TRUE(k_ab.ok());
  ASSERT_TRUE(k_ba.ok());
  EXPECT_EQ(*k_ab, *k_ba);
  EXPECT_EQ(k_ab->size(), 32u);
}

TEST(DhTest, DifferentPeersGiveDifferentKeys) {
  const GroupParams& g = GroupParams::Standard(512);
  DiffieHellman dh(g);
  SecureRandom rng(ToBytes("three-parties"));
  DhKeyPair a = dh.GenerateKeyPair(rng);
  DhKeyPair b = dh.GenerateKeyPair(rng);
  DhKeyPair c = dh.GenerateKeyPair(rng);
  EXPECT_NE(*dh.ComputeSharedKey(a.private_key, b.public_key),
            *dh.ComputeSharedKey(a.private_key, c.public_key));
}

TEST(DhTest, RejectsOutOfRangeAndSmallSubgroupKeys) {
  const GroupParams& g = GroupParams::Standard(512);
  DiffieHellman dh(g);
  SecureRandom rng(ToBytes("dh-validate"));
  DhKeyPair a = dh.GenerateKeyPair(rng);
  EXPECT_FALSE(dh.ComputeSharedKey(a.private_key, BigInt(1)).ok());
  EXPECT_FALSE(dh.ComputeSharedKey(a.private_key, g.p).ok());
  EXPECT_FALSE(
      dh.ComputeSharedKey(a.private_key, BigInt::Sub(g.p, BigInt(1))).ok());
  // A random element of Z_p* is overwhelmingly unlikely to lie in the
  // q-order subgroup; the subgroup check must reject it.
  BigInt outside(12345);
  if (!BigInt::ModExp(outside, g.q, g.p).IsOne()) {
    EXPECT_FALSE(dh.ComputeSharedKey(a.private_key, outside).ok());
  }
}

TEST(SchnorrTest, SignVerifyRoundTrip) {
  const GroupParams& g = GroupParams::Standard(512);
  Schnorr schnorr(g);
  SecureRandom rng(ToBytes("schnorr"));
  SchnorrKeyPair kp = schnorr.GenerateKeyPair(rng);
  Bytes msg = ToBytes("certified reading: 2013-01 total 412 kWh");
  SchnorrSignature sig = schnorr.Sign(kp.private_key, msg, rng);
  EXPECT_TRUE(schnorr.Verify(kp.public_key, msg, sig));
}

TEST(SchnorrTest, RejectsTamperedMessage) {
  const GroupParams& g = GroupParams::Standard(512);
  Schnorr schnorr(g);
  SecureRandom rng(ToBytes("schnorr2"));
  SchnorrKeyPair kp = schnorr.GenerateKeyPair(rng);
  SchnorrSignature sig = schnorr.Sign(kp.private_key, ToBytes("412 kWh"), rng);
  EXPECT_FALSE(schnorr.Verify(kp.public_key, ToBytes("999 kWh"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  const GroupParams& g = GroupParams::Standard(512);
  Schnorr schnorr(g);
  SecureRandom rng(ToBytes("schnorr3"));
  SchnorrKeyPair kp1 = schnorr.GenerateKeyPair(rng);
  SchnorrKeyPair kp2 = schnorr.GenerateKeyPair(rng);
  Bytes msg = ToBytes("msg");
  SchnorrSignature sig = schnorr.Sign(kp1.private_key, msg, rng);
  EXPECT_FALSE(schnorr.Verify(kp2.public_key, msg, sig));
}

TEST(SchnorrTest, RejectsMalformedSignature) {
  const GroupParams& g = GroupParams::Standard(512);
  Schnorr schnorr(g);
  SecureRandom rng(ToBytes("schnorr4"));
  SchnorrKeyPair kp = schnorr.GenerateKeyPair(rng);
  Bytes msg = ToBytes("msg");
  SchnorrSignature sig = schnorr.Sign(kp.private_key, msg, rng);
  SchnorrSignature bad = sig;
  bad.s = BigInt::Add(bad.s, BigInt(1));
  EXPECT_FALSE(schnorr.Verify(kp.public_key, msg, bad));
  bad = sig;
  bad.e = g.q;  // Out of range.
  EXPECT_FALSE(schnorr.Verify(kp.public_key, msg, bad));
}

TEST(SchnorrTest, SignatureSerializationRoundTrip) {
  const GroupParams& g = GroupParams::Standard(512);
  Schnorr schnorr(g);
  SecureRandom rng(ToBytes("schnorr5"));
  SchnorrKeyPair kp = schnorr.GenerateKeyPair(rng);
  Bytes msg = ToBytes("serialize me");
  SchnorrSignature sig = schnorr.Sign(kp.private_key, msg, rng);
  Bytes wire = sig.Serialize(32);
  auto back = SchnorrSignature::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(schnorr.Verify(kp.public_key, msg, *back));
}

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  SecureRandom rng(ToBytes("paillier"));
  PaillierKeyPair kp = Paillier::GenerateKeyPair(rng, 512);
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 123456789ULL}) {
    auto c = kp.pub.Encrypt(BigInt(m), rng);
    ASSERT_TRUE(c.ok());
    auto back = kp.priv.Decrypt(*c, kp.pub);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->ToU64(), m);
  }
}

TEST(PaillierTest, EncryptionIsRandomized) {
  SecureRandom rng(ToBytes("paillier-rand"));
  PaillierKeyPair kp = Paillier::GenerateKeyPair(rng, 512);
  auto c1 = *kp.pub.Encrypt(BigInt(5), rng);
  auto c2 = *kp.pub.Encrypt(BigInt(5), rng);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(kp.priv.Decrypt(c1, kp.pub)->ToU64(), 5u);
  EXPECT_EQ(kp.priv.Decrypt(c2, kp.pub)->ToU64(), 5u);
}

TEST(PaillierTest, HomomorphicAddition) {
  SecureRandom rng(ToBytes("paillier-add"));
  PaillierKeyPair kp = Paillier::GenerateKeyPair(rng, 512);
  auto c1 = *kp.pub.Encrypt(BigInt(1111), rng);
  auto c2 = *kp.pub.Encrypt(BigInt(2222), rng);
  auto c3 = *kp.pub.Encrypt(BigInt(3333), rng);
  BigInt sum = kp.pub.AddCiphertexts(kp.pub.AddCiphertexts(c1, c2), c3);
  EXPECT_EQ(kp.priv.Decrypt(sum, kp.pub)->ToU64(), 6666u);
}

TEST(PaillierTest, HomomorphicScalarMultiply) {
  SecureRandom rng(ToBytes("paillier-mul"));
  PaillierKeyPair kp = Paillier::GenerateKeyPair(rng, 512);
  auto c = *kp.pub.Encrypt(BigInt(21), rng);
  BigInt doubled = kp.pub.MulPlaintext(c, BigInt(2));
  EXPECT_EQ(kp.priv.Decrypt(doubled, kp.pub)->ToU64(), 42u);
}

TEST(PaillierTest, RejectsOversizedPlaintext) {
  SecureRandom rng(ToBytes("paillier-big"));
  PaillierKeyPair kp = Paillier::GenerateKeyPair(rng, 512);
  EXPECT_FALSE(kp.pub.Encrypt(kp.pub.n, rng).ok());
  EXPECT_FALSE(kp.priv.Decrypt(kp.pub.n_squared, kp.pub).ok());
}

TEST(ShamirTest, SplitReconstructExactThreshold) {
  SecureRandom rng(ToBytes("shamir"));
  BigInt secret(0xdeadbeefULL);
  auto shares = ShamirSecretSharing::Split(secret, 3, 5, rng);
  ASSERT_TRUE(shares.ok());
  EXPECT_EQ(shares->size(), 5u);
  std::vector<ShamirShare> subset = {(*shares)[0], (*shares)[2],
                                     (*shares)[4]};
  EXPECT_EQ(*ShamirSecretSharing::Reconstruct(subset), secret);
}

TEST(ShamirTest, AnyThresholdSubsetWorks) {
  SecureRandom rng(ToBytes("shamir-subsets"));
  BigInt secret(987654321ULL);
  auto shares = *ShamirSecretSharing::Split(secret, 2, 4, rng);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      EXPECT_EQ(*ShamirSecretSharing::Reconstruct({shares[i], shares[j]}),
                secret);
    }
  }
}

TEST(ShamirTest, BelowThresholdGivesWrongSecret) {
  SecureRandom rng(ToBytes("shamir-below"));
  BigInt secret(42);
  auto shares = *ShamirSecretSharing::Split(secret, 3, 5, rng);
  // Two shares of a threshold-3 scheme: interpolation succeeds but the
  // value is (with overwhelming probability over the random polynomial)
  // not the secret.
  auto wrong = ShamirSecretSharing::Reconstruct({shares[0], shares[1]});
  ASSERT_TRUE(wrong.ok());
  EXPECT_NE(*wrong, secret);
}

TEST(ShamirTest, KeySplitRoundTrip) {
  SecureRandom rng(ToBytes("shamir-key"));
  Bytes key = rng.NextBytes(32);
  auto shares = *ShamirSecretSharing::SplitKey(key, 3, 6, rng);
  std::vector<ShamirShare> subset = {shares[1], shares[3], shares[5]};
  EXPECT_EQ(*ShamirSecretSharing::ReconstructKey(subset), key);
}

TEST(ShamirTest, RejectsBadParameters) {
  SecureRandom rng(ToBytes("shamir-bad"));
  EXPECT_FALSE(ShamirSecretSharing::Split(BigInt(1), 0, 5, rng).ok());
  EXPECT_FALSE(ShamirSecretSharing::Split(BigInt(1), 6, 5, rng).ok());
  EXPECT_FALSE(
      ShamirSecretSharing::Split(ShamirSecretSharing::FieldPrime(), 2, 3, rng)
          .ok());
  EXPECT_FALSE(ShamirSecretSharing::Reconstruct({}).ok());
}

TEST(ShamirTest, RejectsDuplicateShares) {
  SecureRandom rng(ToBytes("shamir-dup"));
  auto shares = *ShamirSecretSharing::Split(BigInt(7), 2, 3, rng);
  EXPECT_FALSE(
      ShamirSecretSharing::Reconstruct({shares[0], shares[0]}).ok());
}

TEST(ShamirTest, ThresholdOneIsConstantPolynomial) {
  SecureRandom rng(ToBytes("shamir-t1"));
  BigInt secret(123);
  auto shares = *ShamirSecretSharing::Split(secret, 1, 3, rng);
  for (const auto& s : shares) {
    EXPECT_EQ(*ShamirSecretSharing::Reconstruct({s}), secret);
  }
}

}  // namespace
}  // namespace tc::crypto
