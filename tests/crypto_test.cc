#include <gtest/gtest.h>

#include "tc/crypto/aead.h"
#include "tc/crypto/aes.h"
#include "tc/crypto/aes_ctr.h"
#include "tc/crypto/hkdf.h"
#include "tc/crypto/hmac.h"
#include "tc/crypto/merkle.h"
#include "tc/crypto/random.h"
#include "tc/crypto/sha256.h"

namespace tc::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, Fips180EmptyString) {
  EXPECT_EQ(HexEncode(Sha256Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Fips180Abc) {
  EXPECT_EQ(HexEncode(Sha256Hash(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, Fips180TwoBlockMessage) {
  EXPECT_EQ(
      HexEncode(Sha256Hash(
          ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = ToBytes("the quick brown fox jumps over the lazy dog etc etc");
  Sha256 h;
  for (uint8_t b : data) h.Update(&b, 1);
  EXPECT_EQ(h.Finish(), Sha256Hash(data));
}

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4 long test vector.
  Bytes data(1000000, 'a');
  EXPECT_EQ(HexEncode(Sha256Hash(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update(ToBytes("junk"));
  h.Reset();
  h.Update(ToBytes("abc"));
  EXPECT_EQ(HexEncode(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------------ HMAC

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = ToBytes("Hi There");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes msg = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes msg = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyAcceptsAndRejects) {
  Bytes key = ToBytes("secret");
  Bytes msg = ToBytes("message");
  Bytes tag = HmacSha256(key, msg);
  EXPECT_TRUE(HmacVerify(key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(HmacVerify(key, msg, tag));
  EXPECT_FALSE(HmacVerify(key, ToBytes("other"), HmacSha256(key, msg)));
}

// ------------------------------------------------------------------ HKDF

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = *HexDecode("000102030405060708090a0b0c");
  // info = 0xf0f1..f9
  std::string info;
  for (int i = 0; i < 10; ++i) info.push_back(static_cast<char>(0xf0 + i));
  Bytes okm = HkdfSha256(ikm, salt, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, DistinctLabelsGiveIndependentKeys) {
  Bytes parent = ToBytes("parent key material");
  Bytes a = DeriveKey(parent, "label-a");
  Bytes b = DeriveKey(parent, "label-b");
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveKey(parent, "label-a"));
}

// ------------------------------------------------------------------- AES

TEST(AesTest, Fips197Aes128) {
  Bytes key = *HexDecode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = *HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Bytes(ct, ct + 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 16), pt);
}

TEST(AesTest, Fips197Aes256) {
  Bytes key =
      *HexDecode("000102030405060708090a0b0c0d0e0f"
                 "101112131415161718191a1b1c1d1e1f");
  Bytes pt = *HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Bytes(ct, ct + 16)),
            "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(Bytes(back, back + 16), pt);
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(24)).ok());  // AES-192 unsupported.
  EXPECT_FALSE(Aes::Create(Bytes(0)).ok());
}

TEST(AesCtrTest, RoundTripVariousLengths) {
  Bytes key(32, 0x42);
  Bytes nonce(12, 0x01);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) pt[i] = static_cast<uint8_t>(i * 7);
    Bytes ct = *AesCtrCrypt(key, nonce, pt);
    EXPECT_EQ(ct.size(), len);
    if (len > 0) EXPECT_NE(ct, pt);
    EXPECT_EQ(*AesCtrCrypt(key, nonce, ct), pt);
  }
}

TEST(AesCtrTest, DifferentNoncesGiveDifferentStreams) {
  Bytes key(16, 0x11);
  Bytes pt(64, 0);
  Bytes n1(12, 0x01), n2(12, 0x02);
  EXPECT_NE(*AesCtrCrypt(key, n1, pt), *AesCtrCrypt(key, n2, pt));
}

// ------------------------------------------------------------------ AEAD

TEST(AeadTest, SealOpenRoundTrip) {
  Bytes key(32, 0x55);
  Bytes nonce(12, 0x77);
  Bytes aad = ToBytes("doc-id:42;version:3");
  Bytes pt = ToBytes("fifteen-minute aggregate: 1.21 kWh");
  Bytes sealed = *AeadSeal(key, nonce, aad, pt);
  EXPECT_EQ(sealed.size(), pt.size() + kAeadTagSize);
  EXPECT_EQ(*AeadOpen(key, nonce, aad, sealed), pt);
}

TEST(AeadTest, TamperedCiphertextRejected) {
  Bytes key(32, 0x55), nonce(12, 0x77);
  Bytes sealed = *AeadSeal(key, nonce, {}, ToBytes("hello"));
  sealed[0] ^= 1;
  EXPECT_TRUE(AeadOpen(key, nonce, {}, sealed).status().IsIntegrityViolation());
}

TEST(AeadTest, TamperedTagRejected) {
  Bytes key(32, 0x55), nonce(12, 0x77);
  Bytes sealed = *AeadSeal(key, nonce, {}, ToBytes("hello"));
  sealed.back() ^= 1;
  EXPECT_TRUE(AeadOpen(key, nonce, {}, sealed).status().IsIntegrityViolation());
}

TEST(AeadTest, WrongAadRejected) {
  Bytes key(32, 0x55), nonce(12, 0x77);
  Bytes sealed = *AeadSeal(key, nonce, ToBytes("ctx-a"), ToBytes("hello"));
  EXPECT_TRUE(AeadOpen(key, nonce, ToBytes("ctx-b"), sealed)
                  .status()
                  .IsIntegrityViolation());
}

TEST(AeadTest, WrongKeyOrNonceRejected) {
  Bytes key(32, 0x55), nonce(12, 0x77);
  Bytes sealed = *AeadSeal(key, nonce, {}, ToBytes("hello"));
  Bytes key2 = key;
  key2[0] ^= 1;
  EXPECT_FALSE(AeadOpen(key2, nonce, {}, sealed).ok());
  Bytes nonce2 = nonce;
  nonce2[0] ^= 1;
  EXPECT_FALSE(AeadOpen(key, nonce2, {}, sealed).ok());
}

TEST(AeadTest, TruncatedBlobRejected) {
  Bytes key(32, 0x55), nonce(12, 0x77);
  EXPECT_FALSE(AeadOpen(key, nonce, {}, Bytes(10)).ok());
}

// ---------------------------------------------------------------- Random

TEST(SecureRandomTest, DeterministicFromSeed) {
  SecureRandom a(ToBytes("seed")), b(ToBytes("seed"));
  EXPECT_EQ(a.NextBytes(64), b.NextBytes(64));
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(SecureRandomTest, DifferentSeedsDiverge) {
  SecureRandom a(ToBytes("seed-1")), b(ToBytes("seed-2"));
  EXPECT_NE(a.NextBytes(32), b.NextBytes(32));
}

TEST(SecureRandomTest, ReseedChangesStream) {
  SecureRandom a(ToBytes("seed")), b(ToBytes("seed"));
  a.Reseed(ToBytes("fresh entropy"));
  EXPECT_NE(a.NextBytes(32), b.NextBytes(32));
}

TEST(SecureRandomTest, OutputLooksBalanced) {
  SecureRandom rng(ToBytes("balance"));
  Bytes stream = rng.NextBytes(100000);
  int ones = 0;
  for (uint8_t b : stream) ones += __builtin_popcount(b);
  double fraction = static_cast<double>(ones) / (stream.size() * 8);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

// ---------------------------------------------------------------- Merkle

TEST(MerkleTest, SingleLeaf) {
  std::vector<Bytes> leaves = {ToBytes("only")};
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->empty());
  EXPECT_TRUE(MerkleTree::Verify(tree->root(), ToBytes("only"), *proof));
}

TEST(MerkleTest, ProveAndVerifyAllLeaves) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u}) {
    std::vector<Bytes> leaves;
    for (size_t i = 0; i < n; ++i) {
      leaves.push_back(ToBytes("leaf-" + std::to_string(i)));
    }
    auto tree = MerkleTree::Build(leaves);
    ASSERT_TRUE(tree.ok());
    for (size_t i = 0; i < n; ++i) {
      auto proof = tree->Prove(i);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(MerkleTree::Verify(tree->root(), leaves[i], *proof))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, WrongLeafFailsVerification) {
  std::vector<Bytes> leaves = {ToBytes("a"), ToBytes("b"), ToBytes("c"),
                               ToBytes("d")};
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  auto proof = *tree->Prove(1);
  EXPECT_FALSE(MerkleTree::Verify(tree->root(), ToBytes("tampered"), proof));
}

TEST(MerkleTest, ProofForOtherIndexFails) {
  std::vector<Bytes> leaves = {ToBytes("a"), ToBytes("b"), ToBytes("c"),
                               ToBytes("d")};
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  auto proof_for_0 = *tree->Prove(0);
  EXPECT_FALSE(MerkleTree::Verify(tree->root(), leaves[1], proof_for_0));
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  std::vector<Bytes> leaves = {ToBytes("a"), ToBytes("b"), ToBytes("c")};
  auto t1 = MerkleTree::Build(leaves);
  leaves[2] = ToBytes("C");
  auto t2 = MerkleTree::Build(leaves);
  EXPECT_NE(t1->root(), t2->root());
}

TEST(MerkleTest, EmptyRejected) {
  EXPECT_FALSE(MerkleTree::Build({}).ok());
}

TEST(MerkleTest, OutOfRangeProofRejected) {
  auto tree = MerkleTree::Build({ToBytes("a")});
  EXPECT_FALSE(tree->Prove(1).ok());
}

}  // namespace
}  // namespace tc::crypto
