#include <gtest/gtest.h>

#include <memory>

#include "tc/db/database.h"
#include "tc/db/query.h"
#include "tc/storage/flash_device.h"
#include "tc/storage/log_store.h"
#include "tc/storage/page_transform.h"

namespace tc::db {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::FlashGeometry geo;
    geo.page_size = 2048;
    geo.pages_per_block = 16;
    geo.block_count = 128;
    device_ = std::make_unique<storage::FlashDevice>(geo);
    OpenAll();
  }

  void OpenAll() {
    auto store = storage::LogStore::Open(device_.get(), &plain_,
                                         storage::LogStoreOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    auto db = Database::Open(store_.get());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  void ReopenAll() {
    ASSERT_TRUE(db_->Flush().ok());
    db_.reset();
    store_.reset();
    OpenAll();
  }

  Schema ReadingsSchema() {
    return *Schema::Create({{"source", ValueType::kString, false},
                            {"time", ValueType::kTimestamp, false},
                            {"watts", ValueType::kInt64, false},
                            {"note", ValueType::kString, true}});
  }

  std::unique_ptr<storage::FlashDevice> device_;
  storage::PlainPageTransform plain_;
  std::unique_ptr<storage::LogStore> store_;
  std::unique_ptr<Database> db_;
};

TEST_F(DbTest, ValueRoundTripAllTypes) {
  BinaryWriter w;
  Value::Null().Encode(w);
  Value::Bool(true).Encode(w);
  Value::Int64(-7).Encode(w);
  Value::Double(2.5).Encode(w);
  Value::String("hi").Encode(w);
  Value::Blob({1, 2}).Encode(w);
  Value::TimestampVal(123456).Encode(w);
  Bytes buf = w.Take();
  BinaryReader r(buf);
  EXPECT_TRUE(Value::Decode(r)->is_null());
  EXPECT_EQ(Value::Decode(r)->AsBool(), true);
  EXPECT_EQ(Value::Decode(r)->AsInt64(), -7);
  EXPECT_EQ(Value::Decode(r)->AsDouble(), 2.5);
  EXPECT_EQ(Value::Decode(r)->AsString(), "hi");
  EXPECT_EQ(Value::Decode(r)->AsBytes(), (Bytes{1, 2}));
  EXPECT_EQ(Value::Decode(r)->AsTimestamp(), 123456);
}

TEST_F(DbTest, ValueCompareSemantics) {
  EXPECT_EQ(*Value::Compare(Value::Int64(3), Value::Double(3.0)), 0);
  EXPECT_LT(*Value::Compare(Value::Int64(2), Value::Double(2.5)), 0);
  EXPECT_GT(*Value::Compare(Value::String("b"), Value::String("a")), 0);
  EXPECT_FALSE(Value::Compare(Value::String("x"), Value::Int64(1)).ok());
}

TEST_F(DbTest, SchemaValidation) {
  Schema schema = ReadingsSchema();
  EXPECT_TRUE(schema
                  .ValidateRow({Value::String("meter"),
                                Value::TimestampVal(0), Value::Int64(120),
                                Value::Null()})
                  .ok());
  // Wrong arity.
  EXPECT_FALSE(schema.ValidateRow({Value::String("meter")}).ok());
  // Null in non-nullable.
  EXPECT_FALSE(schema
                   .ValidateRow({Value::Null(), Value::TimestampVal(0),
                                 Value::Int64(1), Value::Null()})
                   .ok());
  // Type mismatch.
  EXPECT_FALSE(schema
                   .ValidateRow({Value::String("m"), Value::TimestampVal(0),
                                 Value::String("not-int"), Value::Null()})
                   .ok());
}

TEST_F(DbTest, SchemaRejectsBadDefinitions) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kInt64, false},
                               {"a", ValueType::kString, false}})
                   .ok());
  EXPECT_FALSE(Schema::Create({{"", ValueType::kInt64, false}}).ok());
}

TEST_F(DbTest, TableCrud) {
  auto table = db_->CreateTable("readings", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  auto id = (*table)->Insert({Value::String("meter"), Value::TimestampVal(60),
                              Value::Int64(300), Value::Null()});
  ASSERT_TRUE(id.ok());
  Row row = *(*table)->Get(*id);
  EXPECT_EQ(row.values[2].AsInt64(), 300);

  ASSERT_TRUE((*table)
                  ->Update(*id, {Value::String("meter"),
                                 Value::TimestampVal(60), Value::Int64(350),
                                 Value::String("corrected")})
                  .ok());
  EXPECT_EQ((*table)->Get(*id)->values[2].AsInt64(), 350);

  ASSERT_TRUE((*table)->Delete(*id).ok());
  EXPECT_TRUE((*table)->Get(*id).status().IsNotFound());
  EXPECT_FALSE((*table)->Update(*id, row.values).ok());
}

TEST_F(DbTest, InsertValidatesSchema) {
  auto table = db_->CreateTable("t", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE((*table)->Insert({Value::Int64(1)}).ok());
}

TEST_F(DbTest, CatalogPersistsAcrossReopen) {
  auto table = db_->CreateTable("readings", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*table)
                    ->Insert({Value::String("meter"),
                              Value::TimestampVal(i * 60),
                              Value::Int64(100 + i), Value::Null()})
                    .ok());
  }
  ReopenAll();
  auto reopened = db_->GetTable("readings");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->row_count(), 10u);
  // Row ids continue after the existing maximum.
  auto new_id = (*reopened)
                    ->Insert({Value::String("meter"), Value::TimestampVal(0),
                              Value::Int64(1), Value::Null()});
  ASSERT_TRUE(new_id.ok());
  EXPECT_EQ(*new_id, 11u);
}

TEST_F(DbTest, DropTableRemovesRowsAndCatalog) {
  auto table = db_->CreateTable("tmp", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)
                  ->Insert({Value::String("m"), Value::TimestampVal(0),
                            Value::Int64(1), Value::Null()})
                  .ok());
  ASSERT_TRUE(db_->DropTable("tmp").ok());
  EXPECT_TRUE(db_->GetTable("tmp").status().IsNotFound());
  ReopenAll();
  EXPECT_TRUE(db_->GetTable("tmp").status().IsNotFound());
}

TEST_F(DbTest, DuplicateAndInvalidTableNames) {
  ASSERT_TRUE(db_->CreateTable("t", ReadingsSchema()).ok());
  EXPECT_EQ(db_->CreateTable("t", ReadingsSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(db_->CreateTable("bad/name", ReadingsSchema()).ok());
  EXPECT_FALSE(db_->CreateTable("", ReadingsSchema()).ok());
}

TEST_F(DbTest, QuerySelectAndAggregates) {
  auto table = db_->CreateTable("readings", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*table)
                    ->Insert({Value::String(i % 2 ? "meter" : "gps"),
                              Value::TimestampVal(i * 60),
                              Value::Int64(i * 10), Value::Null()})
                    .ok());
  }
  Predicate meter_only;
  meter_only.Where("source", CompareOp::kEq, Value::String("meter"));
  auto rows = QueryEngine::Select(**table, meter_only);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);

  Predicate range = meter_only;
  range.Where("watts", CompareOp::kGe, Value::Int64(500));
  EXPECT_EQ(*QueryEngine::Aggregate(**table, range, AggFunc::kCount, ""), 25);

  EXPECT_DOUBLE_EQ(
      *QueryEngine::Aggregate(**table, Predicate(), AggFunc::kMax, "watts"),
      990.0);
  EXPECT_DOUBLE_EQ(
      *QueryEngine::Aggregate(**table, Predicate(), AggFunc::kMin, "watts"),
      0.0);
  double sum =
      *QueryEngine::Aggregate(**table, Predicate(), AggFunc::kSum, "watts");
  EXPECT_DOUBLE_EQ(sum, 10.0 * (99 * 100) / 2);

  auto by_source = QueryEngine::GroupBy(**table, Predicate(), "source",
                                        AggFunc::kCount, "");
  ASSERT_TRUE(by_source.ok());
  EXPECT_EQ((*by_source)["meter"], 50);
  EXPECT_EQ((*by_source)["gps"], 50);
}

TEST_F(DbTest, QueryEdgeCases) {
  auto table = db_->CreateTable("t", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  // Aggregates over empty tables.
  EXPECT_EQ(*QueryEngine::Aggregate(**table, Predicate(), AggFunc::kCount, ""),
            0);
  EXPECT_EQ(*QueryEngine::Aggregate(**table, Predicate(), AggFunc::kSum,
                                    "watts"),
            0);
  EXPECT_FALSE(
      QueryEngine::Aggregate(**table, Predicate(), AggFunc::kAvg, "watts")
          .ok());
  EXPECT_FALSE(
      QueryEngine::Aggregate(**table, Predicate(), AggFunc::kMin, "watts")
          .ok());
  // Unknown columns fail loudly.
  Predicate bad;
  bad.Where("nope", CompareOp::kEq, Value::Int64(1));
  EXPECT_FALSE(QueryEngine::Select(**table, bad).ok());
}

TEST_F(DbTest, GroupByAllAggregates) {
  auto table = db_->CreateTable("t", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*table)
                    ->Insert({Value::String(i % 3 == 0 ? "a" : "b"),
                              Value::TimestampVal(i), Value::Int64(i * 10),
                              Value::Null()})
                    .ok());
  }
  auto sum = *QueryEngine::GroupBy(**table, Predicate(), "source",
                                   AggFunc::kSum, "watts");
  EXPECT_DOUBLE_EQ(sum["a"], 0 + 30 + 60 + 90);
  auto avg = *QueryEngine::GroupBy(**table, Predicate(), "source",
                                   AggFunc::kAvg, "watts");
  EXPECT_DOUBLE_EQ(avg["a"], 45.0);
  auto mn = *QueryEngine::GroupBy(**table, Predicate(), "source",
                                  AggFunc::kMin, "watts");
  EXPECT_DOUBLE_EQ(mn["b"], 10.0);
  auto mx = *QueryEngine::GroupBy(**table, Predicate(), "source",
                                  AggFunc::kMax, "watts");
  EXPECT_DOUBLE_EQ(mx["b"], 110.0);
  // Group-by over a non-string column is rejected.
  EXPECT_FALSE(QueryEngine::GroupBy(**table, Predicate(), "watts",
                                    AggFunc::kCount, "")
                   .ok());
}

TEST_F(DbTest, SelectWithLimitStopsEarly) {
  auto table = db_->CreateTable("t", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*table)
                    ->Insert({Value::String("m"), Value::TimestampVal(i),
                              Value::Int64(i), Value::Null()})
                    .ok());
  }
  auto rows = QueryEngine::Select(**table, Predicate(), /*limit=*/7);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);
}

TEST_F(DbTest, SelectColumnsProjects) {
  auto table = db_->CreateTable("t", ReadingsSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)
                  ->Insert({Value::String("m"), Value::TimestampVal(0),
                            Value::Int64(42), Value::Null()})
                  .ok());
  auto cols =
      QueryEngine::SelectColumns(**table, Predicate(), {"watts", "source"});
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ(cols->size(), 1u);
  EXPECT_EQ((*cols)[0][0].AsInt64(), 42);
  EXPECT_EQ((*cols)[0][1].AsString(), "m");
}

TEST_F(DbTest, TimeSeriesAppendRangeWindow) {
  TimeSeriesStore& ts = db_->timeseries();
  // One simulated hour of 1 Hz power readings.
  for (int i = 0; i < 3600; ++i) {
    ASSERT_TRUE(ts.Append("power", 1000 + i, 200 + (i % 50)).ok());
  }
  ASSERT_TRUE(ts.Flush("power").ok());
  EXPECT_EQ(ts.Count("power"), 3600u);

  auto range = ts.Range("power", 1000, 1100);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 100u);
  EXPECT_EQ((*range)[0].time, 1000);
  EXPECT_EQ((*range)[99].time, 1099);

  auto windows = ts.Windowed("power", 1000, 1000 + 3600, 900);
  ASSERT_TRUE(windows.ok());
  // 3600 s of data spans 5 epoch-aligned 900 s windows (start unaligned).
  EXPECT_EQ(windows->size(), 5u);
  uint64_t total = 0;
  for (const auto& w : *windows) total += w.count;
  EXPECT_EQ(total, 3600u);
  for (const auto& w : *windows) {
    EXPECT_GE(w.min, 200);
    EXPECT_LE(w.max, 249);
    EXPECT_GE(w.mean, 200.0);
    EXPECT_LE(w.mean, 249.0);
  }
}

TEST_F(DbTest, TimeSeriesRejectsOutOfOrder) {
  TimeSeriesStore& ts = db_->timeseries();
  ASSERT_TRUE(ts.Append("s", 100, 1).ok());
  EXPECT_FALSE(ts.Append("s", 99, 1).ok());
  EXPECT_TRUE(ts.Append("s", 100, 2).ok());  // Equal timestamps allowed.
}

TEST_F(DbTest, TimeSeriesSurvivesReopen) {
  TimeSeriesStore& ts = db_->timeseries();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ts.Append("power", i, 100 + i % 7).ok());
  }
  ReopenAll();
  EXPECT_EQ(db_->timeseries().Count("power"), 2000u);
  auto range = db_->timeseries().Range("power", 500, 600);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 100u);
  EXPECT_EQ((*range)[0].value, 100 + 500 % 7);
  // Appends continue after the last persisted time.
  EXPECT_FALSE(db_->timeseries().Append("power", 0, 1).ok());
  EXPECT_TRUE(db_->timeseries().Append("power", 2000, 1).ok());
}

TEST_F(DbTest, TimeSeriesCompressionIsEffective) {
  TimeSeriesStore& ts = db_->timeseries();
  uint64_t before = store_->stats().user_bytes_appended;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ts.Append("smooth", i, 500 + (i % 3)).ok());
  }
  ASSERT_TRUE(ts.Flush("smooth").ok());
  uint64_t bytes = store_->stats().user_bytes_appended - before;
  // Raw encoding would be ~16 B/reading; delta encoding should be < 3.
  EXPECT_LT(bytes, 10000u * 3);
}

TEST_F(DbTest, KeywordIndexSearch) {
  KeywordIndex& kw = db_->keywords();
  ASSERT_TRUE(kw.IndexDocument(1, "Photo from Paris, summer 2012").ok());
  ASSERT_TRUE(kw.IndexDocument(2, "Paris electricity bill 2012").ok());
  ASSERT_TRUE(kw.IndexDocument(3, "Medical record: Dr. Martin").ok());

  EXPECT_EQ(*kw.Search("paris"), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(*kw.Search("2012"), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(*kw.Search("martin"), (std::vector<uint64_t>{3}));
  EXPECT_TRUE(kw.Search("nothing")->empty());
  EXPECT_EQ(*kw.SearchAnd({"paris", "bill"}), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(kw.SearchAnd({"paris", "medical"})->empty());
}

TEST_F(DbTest, KeywordIndexRemove) {
  KeywordIndex& kw = db_->keywords();
  ASSERT_TRUE(kw.IndexDocument(1, "alpha beta").ok());
  ASSERT_TRUE(kw.IndexDocument(2, "alpha gamma").ok());
  ASSERT_TRUE(kw.RemoveDocument(1, "alpha beta").ok());
  EXPECT_EQ(*kw.Search("alpha"), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(kw.Search("beta")->empty());
}

TEST_F(DbTest, KeywordIndexIdempotent) {
  KeywordIndex& kw = db_->keywords();
  ASSERT_TRUE(kw.IndexDocument(5, "dup dup dup").ok());
  ASSERT_TRUE(kw.IndexDocument(5, "dup").ok());
  EXPECT_EQ(*kw.Search("dup"), (std::vector<uint64_t>{5}));
}

}  // namespace
}  // namespace tc::db
