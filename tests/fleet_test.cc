#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tc/cloud/infrastructure.h"
#include "tc/common/rng.h"
#include "tc/fleet/fleet.h"
#include "tc/fleet/worker_pool.h"
#include "tc/obs/metrics.h"

namespace tc::fleet {
namespace {

using cloud::CloudInfrastructure;
using cloud::Message;

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool::Options options;
  options.threads = 4;
  options.queue_capacity = 8;  // Far below task count: exercises blocking.
  WorkerPool pool(options);
  std::atomic<int> sum{0};
  const int n = 500;
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  pool.Shutdown();
}

TEST(WorkerPoolTest, ShutdownDrainsQueueAndRejectsNewWork) {
  WorkerPool::Options options;
  options.threads = 2;
  options.queue_capacity = 64;
  auto pool = std::make_unique<WorkerPool>(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool->Submit([&ran] { ran.fetch_add(1); }));
  }
  pool->Shutdown();  // Graceful: everything queued still runs.
  EXPECT_EQ(ran.load(), 32);
  EXPECT_FALSE(pool->Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPoolTest, ThrowingTasksAreContainedCountedAndLatched) {
  // Regression: a task that throws used to escape WorkerLoop and take the
  // whole process down via std::terminate. The pool must survive, keep
  // running later tasks, count the failures, and latch the FIRST error.
  uint64_t metric_before = obs::MetricRegistry::Global()
                               .GetCounter("worker_pool.tasks_failed")
                               .Value();
  WorkerPool::Options options;
  options.threads = 2;
  options.queue_capacity = 16;
  WorkerPool pool(options);
  EXPECT_EQ(pool.tasks_failed(), 0u);
  EXPECT_TRUE(pool.first_error().ok());

  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("first boom"); }));
  pool.Wait();  // Order the two throwing tasks: "first boom" wins the latch.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([] { throw std::string("not std::exception"); }));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Wait();

  EXPECT_EQ(ran.load(), 8);  // The pool outlived both throws.
  EXPECT_EQ(pool.tasks_failed(), 2u);
  Status first = pool.first_error();
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  EXPECT_NE(first.ToString().find("first boom"), std::string::npos)
      << first.ToString();
  EXPECT_EQ(obs::MetricRegistry::Global()
                    .GetCounter("worker_pool.tasks_failed")
                    .Value() -
                metric_before,
            2u);
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_failed(), 2u);  // Shutdown doesn't reset the record.
}

TEST(WorkerPoolTest, ShutdownSemanticsUnderConcurrentSubmitters) {
  // Pins the Submit/Shutdown contract: every Submit that returned true runs
  // exactly once; every Submit after shutdown returns false and never runs.
  // Submitters race Shutdown from four threads to make the window real.
  WorkerPool::Options options;
  options.threads = 3;
  options.queue_capacity = 4;  // Small: submitters block, racing shutdown.
  WorkerPool pool(options);
  std::atomic<uint64_t> accepted{0}, rejected{0}, executed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      // Submit until the pool turns us away: every submitter is
      // guaranteed to observe the shutdown rejection, without depending
      // on who wins the Submit/Shutdown race (which a loaded machine
      // decides differently every run).
      while (pool.Submit([&executed] { executed.fetch_add(1); })) {
        accepted.fetch_add(1);
      }
      rejected.fetch_add(1);
    });
  }
  // Let some work through, then close the pool under the submitters.
  while (executed.load() < 20) std::this_thread::yield();
  pool.Shutdown();
  for (std::thread& thread : submitters) thread.join();

  EXPECT_EQ(executed.load(), accepted.load());  // true => ran, exactly once.
  EXPECT_EQ(rejected.load(), 4u);  // Every submitter saw the door close.
  // Shutdown is idempotent and still rejects.
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

// ---------------------------------------------------------------------------
// Tentpole stress: 8 threads x 1k mixed ops against one shared cloud.
// ---------------------------------------------------------------------------

struct AckedPut {
  std::string key;
  uint64_t version;
  Bytes payload;
};

struct ThreadTrace {
  std::vector<AckedPut> puts;
  uint64_t gets = 0;
  uint64_t sends = 0;
  uint64_t receives_drained = 0;
  uint64_t bytes_in = 0;
};

TEST(CloudConcurrencyTest, MixedOpsKeepVersionsMonotonicAndStatsExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 1000;
  constexpr int kSharedKeys = 32;

  CloudInfrastructure cloud;  // Honest, 16 blob + 16 queue shards.
  std::vector<ThreadTrace> traces(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cloud, &traces] {
      Rng rng(1000 + t);  // Deterministic per-thread op stream.
      ThreadTrace& trace = traces[t];
      // Versions this thread has acked per key (program order).
      std::map<std::string, uint64_t> my_latest;
      for (int op = 0; op < kOpsPerThread; ++op) {
        double dice = rng.NextDouble();
        std::string key = "k" + std::to_string(rng.NextBelow(kSharedKeys));
        if (dice < 0.40) {
          // Payload is unique per (thread, op): lost or misfiled writes are
          // detectable by exact content comparison afterwards.
          Bytes payload = ToBytes("t" + std::to_string(t) + "/op" +
                                  std::to_string(op));
          uint64_t version = cloud.PutBlob(key, payload);
          // Per-key monotonicity, observed from one thread: every ack this
          // thread receives for a key must exceed its previous ack.
          auto [it, inserted] = my_latest.try_emplace(key, version);
          if (!inserted) {
            ASSERT_GT(version, it->second) << key;
            it->second = version;
          }
          trace.bytes_in += payload.size();
          trace.puts.push_back({key, version, std::move(payload)});
        } else if (dice < 0.70) {
          auto data = cloud.GetBlob(key);  // May be NotFound early on.
          ++trace.gets;
          if (!data.ok()) {
            ASSERT_EQ(data.status().code(), StatusCode::kNotFound);
          }
        } else if (dice < 0.85) {
          std::string to = "cell" + std::to_string(rng.NextBelow(kThreads));
          Bytes payload = rng.NextBytes(16);
          trace.bytes_in += payload.size();
          cloud.Send("cell" + std::to_string(t), to, "stress", payload);
          ++trace.sends;
        } else {
          trace.receives_drained +=
              cloud.Receive("cell" + std::to_string(t)).size();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // ---- Exact stats totals (snapshot before the verification reads). ----
  uint64_t want_puts = 0, want_gets = 0, want_sends = 0, want_bytes_in = 0;
  uint64_t drained = 0;
  for (const ThreadTrace& trace : traces) {
    want_puts += trace.puts.size();
    want_gets += trace.gets;
    want_sends += trace.sends;
    want_bytes_in += trace.bytes_in;
    drained += trace.receives_drained;
  }
  cloud::CloudStats stats = cloud.stats();
  EXPECT_EQ(stats.blob_puts, want_puts);
  EXPECT_EQ(stats.blob_gets, want_gets);
  EXPECT_EQ(stats.messages_sent, want_sends);
  EXPECT_EQ(stats.bytes_in, want_bytes_in);

  // Honest cloud: nothing dropped — what was not yet delivered is pending.
  cloud::AdversaryStats adversary = cloud.adversary_stats();
  EXPECT_EQ(adversary.messages_dropped, 0u);
  EXPECT_EQ(adversary.reads_tampered, 0u);
  for (int t = 0; t < kThreads; ++t) {
    drained += cloud.Receive("cell" + std::to_string(t)).size();
    EXPECT_EQ(cloud.PendingCount("cell" + std::to_string(t)), 0u);
  }
  EXPECT_EQ(drained, want_sends);
  EXPECT_EQ(cloud.stats().messages_delivered, want_sends);

  // ---- No lost acknowledged puts; global per-key version consistency. ----
  std::map<std::string, std::set<uint64_t>> versions_by_key;
  for (const ThreadTrace& trace : traces) {
    for (const AckedPut& put : trace.puts) {
      // The acked version must hold exactly the acked payload, forever.
      auto stored = cloud.GetBlobVersion(put.key, put.version);
      ASSERT_TRUE(stored.ok()) << put.key << " v" << put.version;
      EXPECT_EQ(*stored, put.payload) << put.key << " v" << put.version;
      // No two acks may share a version.
      EXPECT_TRUE(versions_by_key[put.key].insert(put.version).second)
          << "duplicate ack " << put.key << " v" << put.version;
    }
  }
  // Versions per key are dense: exactly 1..N with no gaps.
  for (const auto& [key, versions] : versions_by_key) {
    EXPECT_EQ(*versions.begin(), 1u) << key;
    EXPECT_EQ(*versions.rbegin(), versions.size()) << key;
    auto latest = cloud.LatestBlobVersion(key);
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(*latest, versions.size()) << key;
  }
}

// ---------------------------------------------------------------------------
// Batched puts
// ---------------------------------------------------------------------------

TEST(CloudConcurrencyTest, PutBlobBatchMatchesSequentialPuts) {
  CloudInfrastructure cloud;
  std::vector<std::pair<std::string, Bytes>> batch = {
      {"a", ToBytes("a1")}, {"b", ToBytes("b1")}, {"a", ToBytes("a2")},
      {"c", ToBytes("c1")}};
  std::vector<uint64_t> versions = cloud.PutBlobBatch(batch);
  ASSERT_EQ(versions.size(), 4u);
  EXPECT_EQ(versions[0], 1u);
  EXPECT_EQ(versions[1], 1u);
  EXPECT_EQ(versions[2], 2u);  // Same-id entries get consecutive versions.
  EXPECT_EQ(versions[3], 1u);
  EXPECT_EQ(*cloud.GetBlob("a"), ToBytes("a2"));
  EXPECT_EQ(cloud.stats().blob_puts, 4u);
  EXPECT_EQ(cloud.stats().bytes_in, 8u);
}

// ---------------------------------------------------------------------------
// FleetRunner
// ---------------------------------------------------------------------------

TEST(FleetRunnerTest, HonestFleetCompletesWithExactTotals) {
  CloudInfrastructure cloud;
  FleetOptions options;
  options.cells = 16;
  options.threads = 4;
  options.rounds_per_cell = 8;
  options.put_batch = 4;
  options.gets_per_round = 3;
  options.docs_per_cell = 8;
  options.payload_bytes = 64;
  options.seed = 42;
  FleetRunner runner(&cloud, options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->cells_ok, options.cells);
  EXPECT_EQ(report->cells_failed, 0u);
  for (const FleetCellResult& cell : report->cells) {
    EXPECT_TRUE(cell.status.ok()) << cell.cell_id << ": "
                                  << cell.status.ToString();
  }
  // The fleet was alone on this cloud: its totals are the cloud's totals.
  EXPECT_EQ(report->puts,
            options.cells * options.rounds_per_cell * options.put_batch);
  EXPECT_EQ(report->gets,
            options.cells * options.rounds_per_cell * options.gets_per_round);
  cloud::CloudStats stats = cloud.stats();
  EXPECT_EQ(stats.blob_puts, report->puts);
  EXPECT_EQ(stats.blob_gets, report->gets);
  EXPECT_EQ(stats.messages_sent, report->sends);
  EXPECT_EQ(stats.messages_delivered, report->messages_received);
  EXPECT_GT(report->put_get_per_second, 0.0);

  // Latency percentiles come from the tc::obs histograms, delta-scoped to
  // this run: exactly one put_batch sample per round, one get sample per
  // get, even though the registry is global and cumulative.
  EXPECT_EQ(report->put_latency.count,
            options.cells * options.rounds_per_cell);
  EXPECT_EQ(report->get_latency.count, report->gets);
  EXPECT_GT(report->put_latency.p50_us, 0.0);
  EXPECT_LE(report->put_latency.p50_us, report->put_latency.p95_us);
  EXPECT_LE(report->put_latency.p95_us, report->put_latency.p99_us);
  EXPECT_LE(report->put_latency.p99_us, report->put_latency.max_us);
  EXPECT_LE(report->get_latency.p50_us, report->get_latency.max_us);
}

TEST(FleetRunnerTest, SameSeedSameWorkload) {
  // The *operation counts* of a fleet run are a pure function of the
  // options (thread interleaving affects timing only).
  FleetOptions options;
  options.cells = 8;
  options.threads = 4;
  options.rounds_per_cell = 4;
  options.seed = 7;
  uint64_t sends[2];
  for (int run = 0; run < 2; ++run) {
    CloudInfrastructure cloud;
    auto report = FleetRunner(&cloud, options).Run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->cells_failed, 0u);
    sends[run] = report->sends;
  }
  EXPECT_EQ(sends[0], sends[1]);
}

TEST(FleetRunnerTest, RejectsEmptyWorkload) {
  CloudInfrastructure cloud;
  FleetOptions options;
  options.cells = 0;
  EXPECT_FALSE(FleetRunner(&cloud, options).Run().ok());
  options.cells = 4;
  options.put_batch = 100;
  options.docs_per_cell = 10;
  EXPECT_FALSE(FleetRunner(&cloud, options).Run().ok());
}

TEST(FleetRunnerTest, TamperingAdversaryPropagatesPerCellErrors) {
  cloud::AdversaryConfig adversary;
  adversary.tamper_read_prob = 1.0;  // Every read corrupted.
  CloudInfrastructure cloud(adversary);
  FleetOptions options;
  options.cells = 4;
  options.threads = 2;
  options.rounds_per_cell = 2;
  options.verify_reads = true;
  FleetRunner runner(&cloud, options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok());  // Run() itself succeeds...
  EXPECT_EQ(report->cells_failed, options.cells);  // ...every cell convicts.
  for (const FleetCellResult& cell : report->cells) {
    EXPECT_EQ(cell.status.code(), StatusCode::kIntegrityViolation)
        << cell.cell_id;
  }
}

}  // namespace
}  // namespace tc::fleet
