#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tc/cloud/fault_injector.h"
#include "tc/cloud/infrastructure.h"
#include "tc/common/rng.h"
#include "tc/net/backoff.h"
#include "tc/net/channel.h"
#include "tc/net/circuit_breaker.h"
#include "tc/net/outbox.h"
#include "tc/storage/page_transform.h"

namespace tc::net {
namespace {

using cloud::CloudInfrastructure;
using cloud::FaultDecision;
using cloud::NetOp;
using cloud::NetworkFaultConfig;
using cloud::NetworkFaultInjector;

// ---- Backoff ----

TEST(BackoffTest, DeterministicForSeedAndBounded) {
  BackoffPolicy policy;
  policy.initial_us = 100;
  policy.max_us = 10000;
  Backoff a(policy, 42), b(policy, 42), c(policy, 43);
  bool seeds_differ = false;
  for (int i = 0; i < 200; ++i) {
    uint64_t da = a.NextDelayUs();
    EXPECT_EQ(da, b.NextDelayUs());
    if (da != c.NextDelayUs()) seeds_differ = true;
    // Decorrelated jitter never goes below the floor or above the cap.
    EXPECT_GE(da, policy.initial_us);
    EXPECT_LE(da, policy.max_us);
  }
  EXPECT_TRUE(seeds_differ);
}

TEST(BackoffTest, DecorrelatedDelaysSpreadAcrossTheWindow) {
  BackoffPolicy policy;
  policy.initial_us = 100;
  policy.max_us = 100000;
  Backoff backoff(policy, 7);
  std::vector<uint64_t> delays;
  for (int i = 0; i < 300; ++i) delays.push_back(backoff.NextDelayUs());
  auto [min_it, max_it] = std::minmax_element(delays.begin(), delays.end());
  // Jitter, not a fixed ladder: the draws cover a wide range.
  EXPECT_LT(*min_it, 1000u);
  EXPECT_GT(*max_it, 50000u);
}

TEST(BackoffTest, FullJitterRespectsExponentialCeiling) {
  BackoffPolicy policy;
  policy.decorrelated = false;
  policy.initial_us = 100;
  policy.multiplier = 2.0;
  policy.max_us = 100000;
  Backoff backoff(policy, 11);
  for (int attempt = 0; attempt < 20; ++attempt) {
    uint64_t ceiling = std::min<uint64_t>(
        policy.max_us, policy.initial_us * (1ull << attempt));
    EXPECT_LE(backoff.NextDelayUs(), ceiling);
  }
}

TEST(BackoffTest, ResetRewindsGrowthButNotTheStream) {
  BackoffPolicy policy;
  Backoff backoff(policy, 5);
  for (int i = 0; i < 10; ++i) backoff.NextDelayUs();
  EXPECT_EQ(backoff.attempt(), 10u);
  backoff.Reset();
  EXPECT_EQ(backoff.attempt(), 0u);
  // Post-reset the first delay is bounded by the decorrelated window of a
  // fresh sequence: [initial, 3 * initial).
  uint64_t first = backoff.NextDelayUs();
  EXPECT_GE(first, policy.initial_us);
  EXPECT_LT(first, 3 * policy.initial_us);
}

TEST(DeadlineBudgetTest, ChargesUntilExhaustion) {
  DeadlineBudget budget(1000);
  EXPECT_TRUE(budget.Charge(400));
  EXPECT_EQ(budget.spent_us(), 400u);
  EXPECT_EQ(budget.remaining_us(), 600u);
  EXPECT_FALSE(budget.Charge(600));  // Exactly drains it.
  EXPECT_TRUE(budget.exhausted());
  EXPECT_FALSE(budget.Charge(1));
  EXPECT_EQ(budget.spent_us(), 1001u);
}

// ---- Circuit breaker ----

TEST(CircuitBreakerTest, OpensAfterThresholdRejectsThenRecovers) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_cooldown_us = 1000;
  CircuitBreaker breaker(policy);

  uint64_t now = 0;
  EXPECT_TRUE(breaker.AllowRequest(now));
  breaker.RecordFailure(now);
  breaker.RecordFailure(now);
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure(now);  // Third consecutive failure.
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.opens(), 1u);

  // While open and inside the cooldown: rejected in O(1).
  EXPECT_FALSE(breaker.AllowRequest(now + 500));
  EXPECT_EQ(breaker.rejections(), 1u);

  // Past the cooldown: exactly one half-open probe is admitted.
  EXPECT_TRUE(breaker.AllowRequest(now + 1500));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(now + 1500);
  EXPECT_FALSE(breaker.open());
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_cooldown_us = 1000;
  CircuitBreaker breaker(policy);
  breaker.RecordFailure(0);
  EXPECT_TRUE(breaker.open());
  EXPECT_TRUE(breaker.AllowRequest(2000));  // Half-open probe.
  breaker.RecordFailure(2000);              // Probe failed.
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.AllowRequest(2500));  // Cooldown restarted.
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 3;
  CircuitBreaker breaker(policy);
  for (int i = 0; i < 10; ++i) {
    breaker.RecordFailure(0);
    breaker.RecordFailure(0);
    breaker.RecordSuccess(0);  // Never three in a row.
  }
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.opens(), 0u);
}

// ---- Fault injector ----

TEST(FaultInjectorTest, DecisionsArePureFunctionOfSeed) {
  NetworkFaultConfig config = NetworkFaultConfig::Lossy(0.3, 99);
  config.delay_prob = 0.2;
  NetworkFaultInjector a(config), b(config);
  Rng ops(123);
  for (int i = 0; i < 500; ++i) {
    NetOp op = static_cast<NetOp>(ops.NextBelow(5));
    FaultDecision da = a.Next(op);
    FaultDecision db = b.Next(op);
    EXPECT_EQ(da.ToString(), db.ToString()) << "ordinal " << da.ordinal;
  }
  EXPECT_EQ(a.FormatSchedule(), b.FormatSchedule());
  EXPECT_GT(a.stats().faults(), 0u);
}

TEST(FaultInjectorTest, ScheduleReplaysExactly) {
  NetworkFaultConfig config = NetworkFaultConfig::Lossy(0.25, 7);
  config.delay_prob = 0.3;
  NetworkFaultInjector original(config);
  std::vector<NetOp> op_sequence;
  Rng ops(5);
  for (int i = 0; i < 400; ++i) {
    op_sequence.push_back(static_cast<NetOp>(ops.NextBelow(5)));
    original.Next(op_sequence.back());
  }
  auto replay =
      NetworkFaultInjector::FromSchedule(original.Schedule(), config.seed);
  for (NetOp op : op_sequence) replay->Next(op);
  EXPECT_EQ(replay->FormatSchedule(), original.FormatSchedule());
  EXPECT_EQ(replay->stats().faults(), original.stats().faults());
}

TEST(FaultInjectorTest, OutageWindowsAndForcedOutage) {
  NetworkFaultConfig config;
  config.outage_ops = {{3, 6}};  // Ordinals 3, 4, 5.
  NetworkFaultInjector injector(config);
  for (uint64_t ordinal = 1; ordinal <= 8; ++ordinal) {
    FaultDecision d = injector.Next(NetOp::kPut);
    EXPECT_EQ(d.outage, ordinal >= 3 && ordinal < 6) << "ordinal " << ordinal;
  }
  EXPECT_EQ(injector.stats().outage_rejections, 3u);

  injector.ForceOutage(true);
  EXPECT_TRUE(injector.Next(NetOp::kGet).outage);
  injector.ForceOutage(false);
  EXPECT_FALSE(injector.Next(NetOp::kGet).outage);
}

// ---- Resilient channel against an injected network ----

std::unique_ptr<NetworkFaultInjector> ReplayOf(
    std::vector<FaultDecision> decisions) {
  return NetworkFaultInjector::FromSchedule(decisions);
}

FaultDecision At(uint64_t ordinal, NetOp op) {
  FaultDecision d;
  d.ordinal = ordinal;
  d.op = op;
  return d;
}

TEST(ChannelTest, RetriesThroughDroppedRequests) {
  CloudInfrastructure cloud;
  FaultDecision drop1 = At(1, NetOp::kPutBatch);
  drop1.drop_request = true;
  FaultDecision drop2 = At(2, NetOp::kPutBatch);
  drop2.drop_request = true;
  auto injector = ReplayOf({drop1, drop2});
  cloud.set_fault_injector(injector.get());

  ResilientChannel channel(&cloud, "alice", ChannelOptions{});
  auto version = channel.Put("blob", ToBytes("payload"));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  EXPECT_EQ(channel.stats().attempts, 3u);
  EXPECT_EQ(channel.stats().retries, 2u);
  EXPECT_EQ(*cloud.GetBlob("blob"), ToBytes("payload"));
}

TEST(ChannelTest, LostAckRetriesDedupeUnderTheSameToken) {
  CloudInfrastructure cloud;
  FaultDecision lost_ack = At(1, NetOp::kPutBatch);
  lost_ack.drop_ack = true;
  auto injector = ReplayOf({lost_ack});
  cloud.set_fault_injector(injector.get());

  ResilientChannel channel(&cloud, "alice", ChannelOptions{});
  std::string token = "alice|blob|v1";
  auto version = channel.Put("blob", ToBytes("once"), &token);
  ASSERT_TRUE(version.ok());
  // First attempt stored it (ack lost); the retry was answered from the
  // token table: ONE version, not two.
  EXPECT_EQ(*version, 1u);
  EXPECT_EQ(*cloud.LatestBlobVersion("blob"), 1u);
  EXPECT_EQ(cloud.blob_store().token_dedupe_hits(), 1u);
  EXPECT_EQ(cloud.blob_store().versions_created(),
            cloud.blob_store().tokens_applied());
}

TEST(ChannelTest, NetworkDuplicateAppliesOnce) {
  CloudInfrastructure cloud;
  FaultDecision duplicate = At(1, NetOp::kPutBatch);
  duplicate.duplicate = true;
  auto injector = ReplayOf({duplicate});
  cloud.set_fault_injector(injector.get());

  ResilientChannel channel(&cloud, "alice", ChannelOptions{});
  auto version = channel.Put("blob", ToBytes("payload"));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  EXPECT_EQ(*cloud.LatestBlobVersion("blob"), 1u);
  EXPECT_EQ(cloud.blob_store().token_dedupe_hits(), 1u);
}

TEST(ChannelTest, TornBatchIsCompletedItemByItem) {
  CloudInfrastructure cloud;
  // Every batch attempt up to #5 arrives torn, losing each item with
  // p=0.5; the channel must converge by retrying only the unacked items.
  std::vector<FaultDecision> torn;
  for (uint64_t ordinal = 1; ordinal <= 5; ++ordinal) {
    FaultDecision d = At(ordinal, NetOp::kPutBatch);
    d.item_seed = 1000 + ordinal;
    d.item_loss = 0.5;
    torn.push_back(d);
  }
  auto injector = ReplayOf(torn);
  cloud.set_fault_injector(injector.get());

  ResilientChannel channel(&cloud, "alice", ChannelOptions{});
  std::vector<std::pair<std::string, Bytes>> items;
  for (int i = 0; i < 8; ++i) {
    items.emplace_back("doc" + std::to_string(i),
                       ToBytes("payload" + std::to_string(i)));
  }
  auto outcome = channel.PutBatch(items);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(outcome.acked[i]);
    EXPECT_EQ(*cloud.GetBlob("doc" + std::to_string(i)),
              ToBytes("payload" + std::to_string(i)));
    // Retries of an acked item never re-apply: one version per item.
    EXPECT_EQ(*cloud.LatestBlobVersion("doc" + std::to_string(i)), 1u);
  }
  EXPECT_EQ(cloud.blob_store().versions_created(),
            cloud.blob_store().tokens_applied());
}

TEST(ChannelTest, NonTransientErrorsAreAnswersNotNetworkFailures) {
  CloudInfrastructure cloud;
  ResilientChannel channel(&cloud, "alice", ChannelOptions{});
  auto missing = channel.Get("never-stored");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(channel.stats().attempts, 1u);  // No retry on kNotFound.
  EXPECT_FALSE(channel.degraded());
}

TEST(ChannelTest, DeadGoesDegradedThenRecovers) {
  CloudInfrastructure cloud;
  NetworkFaultConfig config;  // Clean network; outage forced by hand.
  NetworkFaultInjector injector(config);
  cloud.set_fault_injector(&injector);
  injector.ForceOutage(true);

  ChannelOptions options;
  options.op_deadline_us = 20000;
  ResilientChannel channel(&cloud, "alice", options);

  // Every operation burns its deadline budget until the breaker trips
  // (3 consecutive op failures by default), then ops fail FAST.
  for (int i = 0; i < 3; ++i) {
    auto r = channel.Put("blob", ToBytes("x"));
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
  EXPECT_TRUE(channel.degraded());
  EXPECT_EQ(channel.stats().breaker_opens, 1u);
  EXPECT_EQ(channel.stats().give_ups, 1u);

  const uint64_t attempts_before = channel.stats().attempts;
  auto rejected = channel.Put("blob", ToBytes("x"));
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(channel.stats().attempts, attempts_before);  // O(1) fast fail.
  EXPECT_EQ(channel.stats().breaker_rejections, 1u);

  // Network heals; waiting out the cooldown on the virtual clock admits a
  // half-open probe, which succeeds and closes the circuit.
  injector.ForceOutage(false);
  channel.AdvanceVirtualTime(ChannelOptions{}.breaker.open_cooldown_us);
  auto recovered = channel.Put("blob", ToBytes("back"));
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(channel.degraded());
  EXPECT_EQ(*cloud.GetBlob("blob"), ToBytes("back"));
}

TEST(ChannelTest, PartialBatchReportsPerItemTruth) {
  CloudInfrastructure cloud;
  // One torn first attempt, then a permanent outage: whatever the first
  // attempt acked must be reported acked even though the op fails.
  FaultDecision torn = At(1, NetOp::kPutBatch);
  torn.item_seed = 4242;
  torn.item_loss = 0.5;
  auto injector = ReplayOf({torn});
  cloud.set_fault_injector(injector.get());

  ChannelOptions options;
  options.op_deadline_us = 30000;
  ResilientChannel channel(&cloud, "alice", options);

  std::vector<std::pair<std::string, Bytes>> items;
  for (int i = 0; i < 8; ++i) {
    items.emplace_back("doc" + std::to_string(i), ToBytes("p"));
  }
  auto first = channel.PutBatch(items);
  ASSERT_TRUE(first.status.ok());  // Clean retries completed the batch.

  injector->ForceOutage(true);
  std::vector<std::pair<std::string, Bytes>> second;
  for (int i = 0; i < 4; ++i) {
    second.emplace_back("other" + std::to_string(i), ToBytes("q"));
  }
  auto failed = channel.PutBatch(second);
  EXPECT_FALSE(failed.status.ok());
  // Nothing could land during a full outage — per-item truth agrees.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(failed.acked[i]);
}

// ---- Exactly-once property: 0–3 deliveries in any order ----

TEST(IdempotencyPropertyTest, RandomRedeliveryHasExactlyOnceEffects) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    cloud::BlobStore store;
    Rng rng(seed);
    constexpr int kWrites = 24;

    // Each logical write: unique token, its own blob, delivered 0–3 times.
    struct Write {
      std::string blob;
      std::string token;
      Bytes payload;
      int deliveries;
    };
    std::vector<Write> writes;
    std::vector<int> delivery_order;
    for (int w = 0; w < kWrites; ++w) {
      Write write;
      write.blob = "blob" + std::to_string(w % 6);  // Blobs shared.
      write.token = "w" + std::to_string(w);
      write.payload = rng.NextBytes(16);
      write.deliveries = static_cast<int>(rng.NextBelow(4));  // 0..3
      for (int d = 0; d < write.deliveries; ++d) delivery_order.push_back(w);
      writes.push_back(std::move(write));
    }
    // Random delivery order (reordering across writes and duplicates).
    for (size_t i = delivery_order.size(); i > 1; --i) {
      std::swap(delivery_order[i - 1], delivery_order[rng.NextBelow(i)]);
    }

    uint64_t delivered_total = 0;
    std::map<std::string, uint64_t> version_of_token;
    for (int w : delivery_order) {
      auto versions = store.PutBatchIdempotent(
          {{writes[w].blob, writes[w].payload}}, {writes[w].token});
      ++delivered_total;
      auto seen = version_of_token.find(writes[w].token);
      if (seen == version_of_token.end()) {
        version_of_token[writes[w].token] = versions[0];
      } else {
        // Re-delivery: answered with the original version, no new effect.
        EXPECT_EQ(versions[0], seen->second) << "seed " << seed;
      }
    }

    uint64_t unique_delivered = version_of_token.size();
    EXPECT_EQ(store.tokens_applied(), unique_delivered) << "seed " << seed;
    EXPECT_EQ(store.versions_created(), unique_delivered) << "seed " << seed;
    EXPECT_EQ(store.token_dedupe_hits(), delivered_total - unique_delivered)
        << "seed " << seed;
  }
}

// ---- Durable outbox ----

storage::FlashGeometry OutboxGeometry() {
  storage::FlashGeometry geo;
  geo.page_size = 512;
  geo.pages_per_block = 8;
  geo.block_count = 64;
  return geo;
}

TEST(OutboxTest, EnqueueSupersedesAndSurvivesReopen) {
  storage::FlashDevice device(OutboxGeometry());
  storage::PlainPageTransform plain;
  auto store =
      storage::LogStore::Open(&device, &plain, storage::LogStoreOptions{});
  ASSERT_TRUE(store.ok());

  Outbox outbox(store->get());
  ASSERT_TRUE(outbox.Load().ok());
  EXPECT_TRUE(outbox.empty());

  ASSERT_TRUE(outbox.Enqueue("blob-a", "a|v1", ToBytes("a1")).ok());
  ASSERT_TRUE(outbox.Enqueue("blob-b", "b|v1", ToBytes("b1")).ok());
  ASSERT_TRUE(outbox.Enqueue("blob-a", "a|v2", ToBytes("a2")).ok());
  // blob-a's first push was superseded: two pending, newest payload wins.
  EXPECT_EQ(outbox.size(), 2u);
  ASSERT_NE(outbox.FindByBlobId("blob-a"), nullptr);
  EXPECT_EQ(outbox.FindByBlobId("blob-a")->payload, ToBytes("a2"));
  EXPECT_EQ(outbox.FindByBlobId("blob-a")->token, "a|v2");

  // Drain one record.
  uint64_t b_seq = outbox.FindByBlobId("blob-b")->seq;
  ASSERT_TRUE(outbox.MarkDone(b_seq).ok());
  EXPECT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox.FindByBlobId("blob-b"), nullptr);

  // Power-cycle: the queue is journaled through the store.
  ASSERT_TRUE((*store)->Flush().ok());
  store->reset();
  auto reopened =
      storage::LogStore::Open(&device, &plain, storage::LogStoreOptions{});
  ASSERT_TRUE(reopened.ok());
  Outbox revived(reopened->get());
  ASSERT_TRUE(revived.Load().ok());
  EXPECT_EQ(revived.size(), 1u);
  ASSERT_NE(revived.FindByBlobId("blob-a"), nullptr);
  EXPECT_EQ(revived.FindByBlobId("blob-a")->payload, ToBytes("a2"));
  EXPECT_EQ(revived.FindByBlobId("blob-a")->token, "a|v2");
  // New sequence numbers continue above the revived ones.
  ASSERT_TRUE(revived.Enqueue("blob-c", "c|v1", ToBytes("c1")).ok());
  EXPECT_GT(revived.FindByBlobId("blob-c")->seq,
            revived.FindByBlobId("blob-a")->seq);
}

}  // namespace
}  // namespace tc::net
