#include <gtest/gtest.h>

#include "tc/nilm/activity_inference.h"
#include "tc/nilm/disaggregator.h"

namespace tc::nilm {
namespace {

using sensors::ApplianceType;
using sensors::DayTrace;
using sensors::HouseholdSimulator;

// The "activity appliances" whose detection constitutes the privacy
// threat the paper motivates with (kettle = tea time, oven = dinner, ...).
std::vector<ApplianceType> ActivityAppliances() {
  return {ApplianceType::kKettle, ApplianceType::kOven,
          ApplianceType::kWashingMachine, ApplianceType::kDishwasher,
          ApplianceType::kEvCharger};
}

TEST(DisaggregatorTest, DetectsSyntheticKettle) {
  // Flat base of 100 W with one kettle activation at t=1000.
  Rng rng(5);
  std::vector<int> trace(4000, 100);
  auto kettle = sensors::ActivationTrace(ApplianceType::kKettle, rng);
  for (size_t i = 0; i < kettle.size(); ++i) trace[1000 + i] += kettle[i];

  Disaggregator attack;
  auto events = attack.Detect(trace, 1);
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const auto& e : events) {
    if (e.type == ApplianceType::kKettle &&
        std::abs(e.start_second - 1000) < 30) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DisaggregatorTest, QuietTraceYieldsNothing) {
  std::vector<int> trace(3600, 80);
  Disaggregator attack;
  EXPECT_TRUE(attack.Detect(trace, 1).empty());
}

TEST(DisaggregatorTest, AttackWorksAt1HzOnRealisticDay) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  double f1_sum = 0;
  int days = 5;
  Disaggregator attack;
  for (int d = 0; d < days; ++d) {
    DayTrace day = sim.SimulateDay(d);
    auto detected = attack.Detect(day.watts, 1);
    NilmScore score =
        Disaggregator::Score(detected, day.events, ActivityAppliances());
    f1_sum += score.f1;
  }
  // The paper's premise: at 1 Hz, appliance signatures are identifiable.
  EXPECT_GT(f1_sum / days, 0.5);
}

TEST(DisaggregatorTest, AttackCollapsesAt15MinGranularity) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  Disaggregator attack;
  double f1_raw = 0, f1_15min = 0;
  int days = 5;
  for (int d = 0; d < days; ++d) {
    DayTrace day = sim.SimulateDay(d);
    f1_raw += Disaggregator::Score(attack.Detect(day.watts, 1), day.events,
                                   ActivityAppliances())
                  .f1;
    f1_15min += Disaggregator::Score(attack.Detect(day.Downsample(900), 900),
                                     day.events, ActivityAppliances())
                    .f1;
  }
  f1_raw /= days;
  f1_15min /= days;
  // The paper's claim: "at that granularity one cannot detect specific
  // activities".
  EXPECT_LT(f1_15min, f1_raw * 0.5);
  EXPECT_LT(f1_15min, 0.3);
}

TEST(DisaggregatorTest, ScoreMathIsConsistent) {
  std::vector<DetectedEvent> detected = {
      {ApplianceType::kKettle, 100, 250, 2000},
      {ApplianceType::kKettle, 5000, 5150, 2000},  // False positive.
  };
  std::vector<sensors::ApplianceEvent> truth = {
      {ApplianceType::kKettle, 90, 240},
      {ApplianceType::kOven, 8000, 10000},  // Missed.
  };
  NilmScore s = Disaggregator::Score(
      detected, truth, {ApplianceType::kKettle, ApplianceType::kOven});
  EXPECT_EQ(s.true_positives, 1);
  EXPECT_EQ(s.false_positives, 1);
  EXPECT_EQ(s.false_negatives, 1);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(ActivityInferenceTest, RoutineStillVisibleAt15Min) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  int wake_found = 0, evening_found = 0;
  int days = 10;
  for (int d = 0; d < days; ++d) {
    DayTrace day = sim.SimulateDay(d);
    DailyRoutine routine = ActivityInference::Infer(day.Downsample(900), 900);
    if (routine.wake_second >= 0) ++wake_found;
    if (routine.evening_presence) ++evening_found;
    EXPECT_GT(routine.overnight_base_watts, 0);
  }
  // Paper: "it is still possible to infer a daily routine" at 15 minutes.
  EXPECT_GE(wake_found, days / 2);
  EXPECT_GE(evening_found, days / 2);
}

TEST(ActivityInferenceTest, EmptyHouseShowsNoRoutine) {
  // Flat base load only (house empty): no wake-up, no evening presence.
  std::vector<int> flat(96, 75);
  DailyRoutine routine = ActivityInference::Infer(flat, 900);
  EXPECT_EQ(routine.wake_second, -1);
  EXPECT_FALSE(routine.evening_presence);
}

TEST(ActivityInferenceTest, HandlesDegenerateInput) {
  EXPECT_EQ(ActivityInference::Infer({}, 900).wake_second, -1);
  EXPECT_EQ(ActivityInference::Infer({100}, 0).wake_second, -1);
}

}  // namespace
}  // namespace tc::nilm
