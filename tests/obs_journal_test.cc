// tc::obs::AuditJournal — hash-chain construction, checkpoint attestation
// hooks, and the tamper-evidence property: against the exported stream
// plus the out-of-band anchors (expected head + count), Verify must detect
// 100% of injected truncations, reorderings and bit-flips, while an
// untampered journal of >= 10k records verifies clean.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tc/common/codec.h"
#include "tc/common/rng.h"
#include "tc/obs/audit_journal.h"
#include "tc/obs/trace.h"

namespace tc::obs {
namespace {

AuditRecord MakeRecord(int i) {
  AuditRecord r;
  r.time = 1000 + i;
  r.kind = static_cast<AuditKind>(1 + i % 5);
  r.subject = "subject-" + std::to_string(i % 7);
  r.action = "action-" + std::to_string(i % 3);
  r.object = "object-" + std::to_string(i);
  r.allowed = i % 2 == 0;
  r.detail = "detail " + std::to_string(i);
  return r;
}

// A deterministic fake signer/verifier pair (the TEE-quote wiring is
// policy_test's subject; here we only need the hook contract).
Result<Bytes> FakeSign(const Bytes& head, uint64_t count) {
  BinaryWriter w;
  w.PutString("fake-sig");
  w.PutBytes(head);
  w.PutU64(count);
  return w.Take();
}

Status FakeVerify(const AuditCheckpoint& cp) {
  BinaryReader r(cp.signature);
  auto magic = r.GetString();
  if (!magic.ok() || *magic != "fake-sig") {
    return Status::IntegrityViolation("bad fake signature");
  }
  if (*r.GetBytes() != cp.chain_head || *r.GetU64() != cp.record_count) {
    return Status::IntegrityViolation("fake signature binds wrong state");
  }
  return Status::OK();
}

TEST(AuditJournalTest, RecordSerializationRoundTrips) {
  AuditRecord r = MakeRecord(3);
  r.index = 42;
  r.trace_id = 7;
  r.span_id = 9;
  auto back = AuditRecord::Deserialize(r.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->index, 42u);
  EXPECT_EQ(back->kind, r.kind);
  EXPECT_EQ(back->subject, r.subject);
  EXPECT_EQ(back->object, r.object);
  EXPECT_EQ(back->allowed, r.allowed);
  EXPECT_EQ(back->trace_id, 7u);
  EXPECT_EQ(back->span_id, 9u);
}

TEST(AuditJournalTest, AppendStampsIndexAndActiveTraceContext) {
  AuditJournal journal;
  TraceRing::Global().Clear();
  uint64_t trace_id = 0, span_id = 0;
  {
    TraceSpan span("test", "audited_op");
    trace_id = span.context().trace_id;
    span_id = span.context().span_id;
    ASSERT_TRUE(journal.Append(MakeRecord(0)).ok());
  }
  ASSERT_TRUE(journal.Append(MakeRecord(1)).ok());  // Un-traced.
  std::vector<AuditRecord> tail = journal.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].index, 0u);
  EXPECT_EQ(tail[0].trace_id, trace_id);
  EXPECT_EQ(tail[0].span_id, span_id);
  EXPECT_EQ(tail[1].index, 1u);
  EXPECT_EQ(tail[1].trace_id, 0u);
}

TEST(AuditJournalTest, TenThousandRecordJournalVerifiesClean) {
  AuditJournalOptions options;
  options.checkpoint_interval = 64;
  options.signer = FakeSign;
  AuditJournal journal(options);
  constexpr int kRecords = 10000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(journal.Append(MakeRecord(i)).ok());
  }
  EXPECT_EQ(journal.record_count(), uint64_t(kRecords));
  EXPECT_EQ(journal.checkpoint_count(), uint64_t(kRecords) / 64);

  Bytes head = journal.head();
  AuditVerifyReport report =
      AuditJournal::Verify(journal.Export(), &head, kRecords, FakeVerify);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.record_count, uint64_t(kRecords));
  EXPECT_EQ(report.checkpoint_count, uint64_t(kRecords) / 64);
  ASSERT_EQ(report.records.size(), size_t(kRecords));
  EXPECT_EQ(report.records[kRecords - 1].index, uint64_t(kRecords - 1));
  EXPECT_EQ(report.head, head);
}

TEST(AuditJournalTest, FlippedCheckpointSignatureBitDetectedWithoutVerifier) {
  // Checkpoint signatures live *inside* the chain: a flipped signature bit
  // breaks the recomputed head even when no quote verifier runs.
  AuditJournalOptions options;
  options.checkpoint_interval = 4;
  options.signer = FakeSign;
  AuditJournal journal(options);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(journal.Append(MakeRecord(i)).ok());
  Bytes exported = journal.Export();
  Bytes head = journal.head();

  // Locate the second checkpoint item and flip one bit of its payload.
  BinaryReader r(exported);
  ASSERT_TRUE(r.GetString().ok());
  uint64_t items = *r.GetVarint();
  std::vector<std::pair<uint8_t, Bytes>> parsed;
  for (uint64_t i = 0; i < items; ++i) {
    uint8_t tag = *r.GetU8();
    parsed.emplace_back(tag, *r.GetBytes());
  }
  int checkpoint_index = -1;
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (parsed[i].first == 0x02) checkpoint_index = static_cast<int>(i);
  }
  ASSERT_GE(checkpoint_index, 0);
  parsed[checkpoint_index].second.back() ^= 1;  // Inside the signature blob.
  BinaryWriter w;
  w.PutString("tc.obs.journal.v1");
  w.PutVarint(items);
  for (const auto& [tag, payload] : parsed) {
    w.PutU8(tag);
    w.PutBytes(payload);
  }
  AuditVerifyReport report = AuditJournal::Verify(w.Take(), &head, 8);
  EXPECT_FALSE(report.ok);
}

// ------------------------------------------------ corruption property test

struct ParsedStream {
  uint64_t items = 0;
  std::vector<std::pair<uint8_t, Bytes>> entries;
};

ParsedStream ParseStream(const Bytes& exported) {
  ParsedStream out;
  BinaryReader r(exported);
  EXPECT_TRUE(r.GetString().ok());
  out.items = *r.GetVarint();
  for (uint64_t i = 0; i < out.items; ++i) {
    uint8_t tag = *r.GetU8();
    out.entries.emplace_back(tag, *r.GetBytes());
  }
  return out;
}

Bytes RebuildStream(const ParsedStream& stream) {
  BinaryWriter w;
  w.PutString("tc.obs.journal.v1");
  w.PutVarint(stream.entries.size());
  for (const auto& [tag, payload] : stream.entries) {
    w.PutU8(tag);
    w.PutBytes(payload);
  }
  return w.Take();
}

TEST(AuditJournalProperty, AllInjectedCorruptionsDetected) {
  AuditJournalOptions options;
  options.checkpoint_interval = 16;
  options.signer = FakeSign;
  AuditJournal journal(options);
  constexpr int kRecords = 300;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(journal.Append(MakeRecord(i)).ok());
  }
  const Bytes exported = journal.Export();
  const Bytes head = journal.head();
  ASSERT_TRUE(
      AuditJournal::Verify(exported, &head, kRecords, FakeVerify).ok);

  Rng rng(20260807);
  size_t trials = 0, detected = 0;
  auto check_detected = [&](const Bytes& corrupted, const char* what) {
    ++trials;
    AuditVerifyReport report =
        AuditJournal::Verify(corrupted, &head, kRecords, FakeVerify);
    if (!report.ok) {
      ++detected;
    } else {
      ADD_FAILURE() << what << " went undetected";
    }
  };

  const ParsedStream stream = ParseStream(exported);
  for (int trial = 0; trial < 40; ++trial) {
    // Truncation: drop a random-length tail of items.
    {
      ParsedStream t = stream;
      size_t keep = rng.NextBelow(stream.entries.size());
      t.entries.resize(keep);
      check_detected(RebuildStream(t), "truncation");
    }
    // Reordering: swap two distinct items.
    {
      ParsedStream t = stream;
      size_t a = rng.NextBelow(t.entries.size());
      size_t b = rng.NextBelow(t.entries.size());
      if (a == b) b = (b + 1) % t.entries.size();
      std::swap(t.entries[a], t.entries[b]);
      check_detected(RebuildStream(t), "reordering");
    }
    // Bit-flip: one random bit anywhere in the raw stream.
    {
      Bytes t = exported;
      size_t pos = rng.NextBelow(t.size());
      t[pos] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
      check_detected(t, "bit-flip");
    }
    // Record deletion from the middle (indices become discontiguous).
    {
      ParsedStream t = stream;
      size_t victim = rng.NextBelow(t.entries.size());
      t.entries.erase(t.entries.begin() + victim);
      check_detected(RebuildStream(t), "mid-stream deletion");
    }
  }
  EXPECT_EQ(detected, trials) << "detection rate "
                              << (100.0 * detected / trials) << "%";
}

}  // namespace
}  // namespace tc::obs
