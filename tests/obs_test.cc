// tc::obs — histogram bucket math, percentile extraction, registry
// semantics, trace ring. The concurrency tests here also run under the
// `tsan` preset (scripts/tsan_tests.sh).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tc/obs/metrics.h"
#include "tc/obs/trace.h"

namespace tc::obs {
namespace {

// ---------------------------------------------------------------- buckets

TEST(HistogramBuckets, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAndContinuous) {
  // Bucket ranges must tile the value space: each bucket starts right
  // after the previous one ends, and indices never decrease with value.
  size_t last = Histogram::BucketIndex(0);
  for (uint64_t v = 1; v < 100000; ++v) {
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, last) << "index decreased at v=" << v;
    EXPECT_LE(idx - last, 1u) << "index skipped a bucket at v=" << v;
    last = idx;
  }
  for (size_t i = 0; i + 1 < 64; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i) + 1,
              Histogram::BucketLowerBound(i + 1))
        << "gap/overlap between buckets " << i << " and " << i + 1;
  }
}

TEST(HistogramBuckets, EveryValueFallsInsideItsBucket) {
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int shift = 2; shift < 64; ++shift) {
    uint64_t p = 1ull << shift;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(~0ull);
  for (uint64_t v : probes) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kBucketCount);
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << "v=" << v;
    EXPECT_GE(Histogram::BucketUpperBound(idx), v) << "v=" << v;
  }
}

TEST(HistogramBuckets, RelativeErrorBoundedAtQuarter) {
  // From 4 up each octave has 4 linear sub-buckets, so within a bucket
  // (upper - lower) <= lower / 4: reporting the upper bound overstates a
  // value by at most 25%.
  for (uint64_t v : {4ull, 5ull, 100ull, 1000ull, 123456ull, 1ull << 40}) {
    size_t idx = Histogram::BucketIndex(v);
    uint64_t lo = Histogram::BucketLowerBound(idx);
    uint64_t hi = Histogram::BucketUpperBound(idx);
    EXPECT_LE(hi - lo, lo / 4) << "v=" << v;
  }
}

// ------------------------------------------------------------ percentiles

TEST(HistogramPercentiles, EmptyHistogramReportsZero) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(HistogramPercentiles, SingleValueIsEveryQuantile) {
  Histogram h;
  h.Record(700);
  HistogramSnapshot s = h.Snapshot();
  for (double p : {0.0, 0.5, 0.99, 1.0}) {
    // Bucket upper bound, clamped by the exactly-tracked max.
    EXPECT_EQ(s.Percentile(p), 700.0) << "p=" << p;
  }
  EXPECT_EQ(s.max, 700u);
  EXPECT_EQ(s.sum, 700u);
}

TEST(HistogramPercentiles, UniformDistributionWithinErrorBound) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_EQ(s.sum, 10000ull * 10001 / 2);
  EXPECT_EQ(s.max, 10000u);
  // Conservative estimate: never below the true quantile, at most 25% over.
  struct { double p; double exact; } cases[] = {
      {0.50, 5000}, {0.90, 9000}, {0.95, 9500}, {0.99, 9900}};
  for (const auto& c : cases) {
    double est = s.Percentile(c.p);
    EXPECT_GE(est, c.exact) << "p=" << c.p;
    EXPECT_LE(est, c.exact * 1.25) << "p=" << c.p;
  }
  EXPECT_EQ(s.Percentile(1.0), 10000.0);  // max is exact.
}

TEST(HistogramPercentiles, BimodalDistribution) {
  // 90 fast ops at 10us, 10 slow ops at 50000us: p50 must sit in the fast
  // mode, p95+ in the slow mode — the shape percentiles exist to expose.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(50000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_GE(s.Percentile(0.50), 10.0);
  EXPECT_LE(s.Percentile(0.50), 12.5);
  EXPECT_GE(s.Percentile(0.95), 50000.0);
  EXPECT_LE(s.Percentile(0.95), 50000.0 * 1.25);
}

TEST(HistogramPercentiles, MinusScopesAMeasuredRegion) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(5);
  HistogramSnapshot before = h.Snapshot();
  for (int i = 0; i < 50; ++i) h.Record(1000);
  HistogramSnapshot delta = h.Snapshot().Minus(before);
  EXPECT_EQ(delta.count, 50u);
  EXPECT_EQ(delta.sum, 50u * 1000);
  // All 50 new samples are 1000: every quantile of the delta is ~1000,
  // unpolluted by the 100 old 5us samples.
  EXPECT_GE(delta.Percentile(0.5), 1000.0);
  EXPECT_LE(delta.Percentile(0.5), 1250.0);
}

// ------------------------------------------------------------ concurrency

TEST(ObsConcurrency, CountersAreExactUnderContention) {
  Counter c;
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kOps = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        c.Increment();
        g.Add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), uint64_t(kThreads) * kOps);
  EXPECT_EQ(g.Value(), int64_t(kThreads) * kOps);
}

TEST(ObsConcurrency, HistogramCountSumMaxExactUnderContention) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kOps; ++i) {
        h.Record(static_cast<uint64_t>(t * kOps + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot s = h.Snapshot();
  uint64_t n = uint64_t(kThreads) * kOps;
  EXPECT_EQ(s.count, n);
  EXPECT_EQ(s.sum, n * (n - 1) / 2);
  EXPECT_EQ(s.max, n - 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

TEST(ObsConcurrency, RegistryLookupRacesWithRecording) {
  // Half the threads resolve handles (shared/unique registry lock), half
  // hammer already-resolved metrics; TSan is the real judge here.
  MetricRegistry registry;
  Counter& hot = registry.GetCounter("hot");
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("c" + std::to_string(t) + "." +
                            std::to_string(i)).Increment();
        registry.GetHistogram("h" + std::to_string(i % 7)).Record(i);
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hot, &registry, &stop] {
      // do-while: on a loaded 1-core host this thread may not get scheduled
      // until after `stop` is set; at least one iteration keeps the
      // hot-counter assertion below meaningful.
      do {
        hot.Increment();
        registry.Snapshot();
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = 4; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(registry.GetCounter("c0.0").Value(), 1u);
  EXPECT_GT(hot.Value(), 0u);
}

// ---------------------------------------------------------------- registry

TEST(MetricRegistryTest, SameNameReturnsSameMetric) {
  MetricRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  // Namespaces are independent: a gauge named "x" is a different metric.
  registry.GetGauge("x").Set(42);
  EXPECT_EQ(a.Value(), 1u);
}

TEST(MetricRegistryTest, SnapshotAndJsonExport) {
  MetricRegistry registry;
  registry.GetCounter("ops").Increment(3);
  registry.GetGauge("depth").Set(-2);
  Histogram& h = registry.GetHistogram("lat_us");
  h.Record(100);
  h.Record(200);

  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("ops"), 3u);
  EXPECT_EQ(snap.gauges.at("depth"), -2);
  EXPECT_EQ(snap.histograms.at("lat_us").count, 2u);

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"ops\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(MetricRegistryTest, ResetAllZeroesButKeepsReferencesValid) {
  MetricRegistry registry;
  Counter& c = registry.GetCounter("c");
  c.Increment(9);
  Histogram& h = registry.GetHistogram("h");
  h.Record(1);
  registry.ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  c.Increment();  // The old reference still points at the live metric.
  EXPECT_EQ(registry.GetCounter("c").Value(), 1u);
}

TEST(MetricRegistryTest, DisabledModeDropsWrites) {
  MetricRegistry registry;
  Counter& c = registry.GetCounter("c");
  Histogram& h = registry.GetHistogram("h");
  Gauge& g = registry.GetGauge("g");
  SetEnabled(false);
  c.Increment();
  h.Record(5);
  g.Set(5);
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_EQ(g.Value(), 0);
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
}

TEST(ScopedTimerTest, RecordsOnceAndNullIsNoop) {
  Histogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
  { ScopedTimer t(nullptr); }  // Must not crash.
}

// ------------------------------------------------------------------ trace

TEST(TraceRingTest, WrapsKeepingMostRecent) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.Emit(TraceKind::kInstant, "test", "ev" + std::to_string(i));
  }
  EXPECT_EQ(ring.total_emitted(), 6u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first and contiguous: events 2..5 survived.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(std::string(events[i].name), "ev" + std::to_string(i + 2));
    if (i > 0) EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(TraceRingTest, TruncatesLongStringsSafely) {
  TraceRing ring(2);
  std::string long_str(200, 'x');
  ring.Emit(TraceKind::kInstant, long_str, long_str, long_str);
  TraceEvent e = ring.Snapshot().at(0);
  EXPECT_EQ(std::string(e.component),
            std::string(sizeof(e.component) - 1, 'x'));
  EXPECT_EQ(std::string(e.name), std::string(sizeof(e.name) - 1, 'x'));
  EXPECT_EQ(std::string(e.detail), std::string(sizeof(e.detail) - 1, 'x'));
}

TEST(TraceRingTest, SpanEmitsBeginAndEndWithDuration) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  { TraceSpan span("test", "op", "detail"); }
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::kBegin);
  EXPECT_EQ(events[1].kind, TraceKind::kEnd);
  EXPECT_EQ(std::string(events[1].name), "op");
  EXPECT_GE(events[1].t_us, events[0].t_us);
  std::string json = ring.ToJsonLines();
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos) << json;
}

TEST(TraceRingTest, MultiThreadOverflowSweepNoTornEvents) {
  // 8 threads overflow a 4096-slot ring several times over. Every retained
  // event must be internally consistent (component / name / detail written
  // by the same Emit — a torn slot would mix threads), the retained window
  // must be contiguous in seq, and the drop accounting must balance.
  constexpr size_t kCapacity = TraceRing::kDefaultCapacity;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;  // 16000 total, ~4x overflow.
  TraceRing ring(kCapacity);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      std::string comp = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        ring.Emit(TraceKind::kInstant, comp, comp + ".e" + std::to_string(i),
                  comp);
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t total = uint64_t(kThreads) * kPerThread;
  EXPECT_EQ(ring.total_emitted(), total);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(ring.dropped(), total - kCapacity);

  std::vector<int> last_index(kThreads, -1);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) {
      ASSERT_EQ(e.seq, events[i - 1].seq + 1) << "gap in retained window";
    }
    std::string comp(e.component);
    std::string name(e.name);
    ASSERT_EQ(std::string(e.detail), comp) << "torn detail at seq " << e.seq;
    ASSERT_EQ(name.rfind(comp + ".e", 0), 0u)
        << "torn name/component pair at seq " << e.seq << ": " << comp
        << " / " << name;
    // Per-thread event indices must appear in emission order.
    int t = std::stoi(comp.substr(1));
    int idx = std::stoi(name.substr(comp.size() + 2));
    ASSERT_GT(idx, last_index[t]) << "thread " << t << " reordered";
    last_index[t] = idx;
  }
}

TEST(ObsConcurrency, ExportUnderLoadStaysConsistent) {
  // Satellite for the documented snapshot-vs-Reset semantics: exports
  // racing writers must only ever see values some writer produced, and
  // successive snapshots must be monotone (no Reset in this test). TSan
  // (scripts/tsan_tests.sh) is the other half of the judge here.
  MetricRegistry registry;
  Counter& ops = registry.GetCounter("ops");
  Histogram& lat = registry.GetHistogram("lat");
  constexpr int kThreads = 4;
  constexpr int kOps = 30000;
  constexpr uint64_t kValue = 7;  // Single bucket: bucket totals are exact.
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        ops.Increment();
        lat.Record(kValue);
      }
    });
  }
  uint64_t last_ops = 0, last_count = 0;
  std::thread exporter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      RegistrySnapshot snap = registry.Snapshot();
      uint64_t c = snap.counters.at("ops");
      const HistogramSnapshot& h = snap.histograms.at("lat");
      ASSERT_GE(c, last_ops);
      ASSERT_GE(h.count, last_count);
      ASSERT_LE(c, uint64_t(kThreads) * kOps);
      uint64_t bucket_total = 0;
      for (uint64_t b : h.buckets) bucket_total += b;
      // Everything lands in Record(7)'s bucket; nothing ever appears in
      // another bucket (a torn read would).
      ASSERT_EQ(bucket_total, h.buckets[Histogram::BucketIndex(kValue)]);
      ASSERT_LE(bucket_total, uint64_t(kThreads) * kOps);
      // JSON export must serialize mid-load without dying.
      ASSERT_FALSE(ToJson(snap).empty());
      last_ops = c;
      last_count = h.count;
    }
  });
  for (auto& th : writers) th.join();
  done.store(true);
  exporter.join();
  RegistrySnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("ops"), uint64_t(kThreads) * kOps);
  EXPECT_EQ(final_snap.histograms.at("lat").count, uint64_t(kThreads) * kOps);
  EXPECT_EQ(final_snap.histograms.at("lat").sum,
            kValue * uint64_t(kThreads) * kOps);
}

TEST(TraceRingTest, DisabledModeDropsEvents) {
  TraceRing ring(8);
  SetEnabled(false);
  ring.Emit(TraceKind::kInstant, "test", "dropped");
  SetEnabled(true);
  EXPECT_EQ(ring.total_emitted(), 0u);
  ring.Emit(TraceKind::kInstant, "test", "kept");
  EXPECT_EQ(ring.total_emitted(), 1u);
}

}  // namespace
}  // namespace tc::obs
