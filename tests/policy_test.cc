#include <gtest/gtest.h>

#include "tc/common/clock.h"
#include "tc/policy/audit.h"
#include "tc/policy/sticky_policy.h"
#include "tc/policy/ucon.h"

namespace tc::policy {
namespace {

// Footnote 6 of the paper: "a photo could be accessed ten times
// (mutability), in the course of 2012 (condition), informing the owner of
// the precise access date (obligation)".
Policy Footnote6Policy() {
  UsageRule rule;
  rule.id = "photo-rule";
  rule.subjects = {"bob"};
  rule.rights = {Right::kRead};
  rule.not_before = MakeTimestamp(2012, 1, 1);
  rule.not_after = MakeTimestamp(2012, 12, 31, 23, 59, 59);
  rule.max_uses = 10;
  rule.obligations = {ObligationType::kNotifyOwner,
                      ObligationType::kLogAccess};
  Policy p;
  p.id = "photo-policy";
  p.owner = "alice";
  p.rules = {rule};
  return p;
}

TEST(UconTest, Footnote6AllowsTenReadsIn2012) {
  Policy p = Footnote6Policy();
  DecisionPoint pdp;
  AccessRequest req{"bob", Right::kRead, {}, MakeTimestamp(2012, 6, 1)};
  for (int i = 0; i < 10; ++i) {
    Decision d = pdp.EvaluateAndConsume(p, req);
    EXPECT_TRUE(d.allowed) << "access " << i;
    EXPECT_EQ(d.rule_id, "photo-rule");
    ASSERT_EQ(d.obligations.size(), 2u);
  }
  // Eleventh access: mutability quota exhausted.
  Decision d = pdp.EvaluateAndConsume(p, req);
  EXPECT_FALSE(d.allowed);
  EXPECT_NE(d.reason.find("quota"), std::string::npos);
  EXPECT_EQ(pdp.UseCount("photo-policy", "photo-rule", "bob"), 10u);
}

TEST(UconTest, ConditionTimeWindowEnforced) {
  Policy p = Footnote6Policy();
  DecisionPoint pdp;
  // 2013: outside the validity window.
  AccessRequest req{"bob", Right::kRead, {}, MakeTimestamp(2013, 1, 1)};
  EXPECT_FALSE(pdp.EvaluateAndConsume(p, req).allowed);
  // 2011: before the window.
  req.now = MakeTimestamp(2011, 12, 31);
  EXPECT_FALSE(pdp.EvaluateAndConsume(p, req).allowed);
  // Denied attempts must not consume quota.
  EXPECT_EQ(pdp.UseCount("photo-policy", "photo-rule", "bob"), 0u);
}

TEST(UconTest, SubjectAndRightFiltering) {
  Policy p = Footnote6Policy();
  DecisionPoint pdp;
  AccessRequest wrong_subject{"carol", Right::kRead, {},
                              MakeTimestamp(2012, 6, 1)};
  EXPECT_FALSE(pdp.EvaluateAndConsume(p, wrong_subject).allowed);
  AccessRequest wrong_right{"bob", Right::kShare, {},
                            MakeTimestamp(2012, 6, 1)};
  EXPECT_FALSE(pdp.EvaluateAndConsume(p, wrong_right).allowed);
}

TEST(UconTest, AttributeConditions) {
  UsageRule rule;
  rule.id = "adults-from-home";
  rule.rights = {Right::kRead};
  rule.conditions = {
      AttributeCondition{"age", ConditionOp::kGe, PolicyValue(int64_t{18})},
      AttributeCondition{"location", ConditionOp::kEq,
                         PolicyValue(std::string("home"))}};
  Policy p{"attr-policy", "alice", {rule}};
  DecisionPoint pdp;

  Attributes ok_attrs{{"age", PolicyValue(int64_t{30})},
                      {"location", PolicyValue(std::string("home"))}};
  EXPECT_TRUE(pdp.EvaluateAndConsume(p, {"any", Right::kRead, ok_attrs, 0})
                  .allowed);

  Attributes minor{{"age", PolicyValue(int64_t{12})},
                   {"location", PolicyValue(std::string("home"))}};
  EXPECT_FALSE(
      pdp.EvaluateAndConsume(p, {"any", Right::kRead, minor, 0}).allowed);

  Attributes away{{"age", PolicyValue(int64_t{30})},
                  {"location", PolicyValue(std::string("cafe"))}};
  EXPECT_FALSE(
      pdp.EvaluateAndConsume(p, {"any", Right::kRead, away, 0}).allowed);

  // Missing attribute -> deny.
  EXPECT_FALSE(pdp.EvaluateAndConsume(p, {"any", Right::kRead, {}, 0}).allowed);
}

TEST(UconTest, FirstMatchingRuleWins) {
  UsageRule narrow;
  narrow.id = "bob-limited";
  narrow.subjects = {"bob"};
  narrow.rights = {Right::kRead};
  narrow.max_uses = 1;
  UsageRule broad;
  broad.id = "anyone";
  broad.rights = {Right::kRead};
  Policy p{"pol", "alice", {narrow, broad}};
  DecisionPoint pdp;
  AccessRequest req{"bob", Right::kRead, {}, 0};
  EXPECT_EQ(pdp.EvaluateAndConsume(p, req).rule_id, "bob-limited");
  // Quota used up -> falls through to the broad rule.
  EXPECT_EQ(pdp.EvaluateAndConsume(p, req).rule_id, "anyone");
}

TEST(UconTest, PeekDoesNotConsume) {
  Policy p = Footnote6Policy();
  DecisionPoint pdp;
  AccessRequest req{"bob", Right::kRead, {}, MakeTimestamp(2012, 3, 1)};
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(pdp.Peek(p, req).allowed);
  EXPECT_EQ(pdp.UseCount("photo-policy", "photo-rule", "bob"), 0u);
}

TEST(UconTest, StateExportImportRoundTrip) {
  Policy p = Footnote6Policy();
  DecisionPoint pdp;
  AccessRequest req{"bob", Right::kRead, {}, MakeTimestamp(2012, 3, 1)};
  for (int i = 0; i < 7; ++i) (void)pdp.EvaluateAndConsume(p, req);

  DecisionPoint restored;
  ASSERT_TRUE(restored.ImportState(pdp.ExportState()).ok());
  EXPECT_EQ(restored.UseCount("photo-policy", "photo-rule", "bob"), 7u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(restored.EvaluateAndConsume(p, req).allowed);
  }
  EXPECT_FALSE(restored.EvaluateAndConsume(p, req).allowed);
}

TEST(UconTest, PolicySerializationRoundTrip) {
  Policy p = Footnote6Policy();
  auto back = Policy::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, p.id);
  EXPECT_EQ(back->owner, p.owner);
  ASSERT_EQ(back->rules.size(), 1u);
  EXPECT_EQ(back->rules[0].max_uses, 10u);
  EXPECT_EQ(back->rules[0].obligations.size(), 2u);
  EXPECT_EQ(back->Hash(), p.Hash());
}

TEST(StickyPolicyTest, BindVerifyRoundTrip) {
  Policy p = Footnote6Policy();
  Bytes key(32, 0x42);
  Bytes envelope = StickyPolicy::Bind(p, "doc-1", key);
  auto back = StickyPolicy::VerifyAndExtract(envelope, "doc-1", key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, p.id);
  EXPECT_EQ(*StickyPolicy::PeekPolicyHash(envelope), p.Hash());
}

TEST(StickyPolicyTest, SwappedPolicyDetected) {
  Policy strict = Footnote6Policy();
  Policy lax = strict;
  lax.rules[0].max_uses = 0;  // Unlimited.
  Bytes key(32, 0x42);
  Bytes strict_env = StickyPolicy::Bind(strict, "doc-1", key);
  Bytes lax_env = StickyPolicy::Bind(lax, "doc-1", key);

  // An adversary without the key cannot re-MAC a lax policy.
  Bytes forged_key(32, 0x13);
  Bytes forged = StickyPolicy::Bind(lax, "doc-1", forged_key);
  EXPECT_TRUE(StickyPolicy::VerifyAndExtract(forged, "doc-1", key)
                  .status()
                  .IsIntegrityViolation());
  // Envelope bound to a different object id fails too.
  EXPECT_TRUE(StickyPolicy::VerifyAndExtract(strict_env, "doc-2", key)
                  .status()
                  .IsIntegrityViolation());
  // The legitimate lax envelope (made by the key holder) verifies.
  EXPECT_TRUE(StickyPolicy::VerifyAndExtract(lax_env, "doc-1", key).ok());
}

TEST(StickyPolicyTest, BitFlipDetected) {
  Policy p = Footnote6Policy();
  Bytes key(32, 0x42);
  Bytes envelope = StickyPolicy::Bind(p, "doc-1", key);
  for (size_t pos : {size_t{20}, envelope.size() / 2, envelope.size() - 1}) {
    Bytes tampered = envelope;
    tampered[pos] ^= 1;
    EXPECT_FALSE(StickyPolicy::VerifyAndExtract(tampered, "doc-1", key).ok());
  }
}

TEST(AuditLogTest, AppendExportVerify) {
  tee::TrustedExecutionEnvironment tee("audit-cell",
                                       tee::DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("audit").ok());
  AuditLog log(&tee, "audit");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Append(AuditEntry{0, 1000 + i, "bob", "read",
                                      "doc-" + std::to_string(i), i % 2 == 0,
                                      "rule-x"})
                    .ok());
  }
  auto exported = log.Export();
  ASSERT_TRUE(exported.ok());
  auto entries = AuditLog::VerifyAndDecrypt(*exported, &tee, "audit", 5);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 5u);
  EXPECT_EQ((*entries)[3].object, "doc-3");
  EXPECT_EQ((*entries)[3].index, 3u);
  EXPECT_FALSE((*entries)[3].allowed);
  EXPECT_EQ((*entries)[3].kind, obs::AuditKind::kPolicyDecision);
}

TEST(AuditLogTest, TamperedEntryDetected) {
  tee::TrustedExecutionEnvironment tee("audit-cell2",
                                       tee::DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("audit").ok());
  AuditLog log(&tee, "audit");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        log.Append(AuditEntry{0, 0, "s", "read", "o", true, ""}).ok());
  }
  auto exported_or = log.Export();
  ASSERT_TRUE(exported_or.ok());
  Bytes exported = *exported_or;
  exported[exported.size() / 2] ^= 1;
  EXPECT_FALSE(
      AuditLog::VerifyAndDecrypt(exported, &tee, "audit", 3).ok());
}

TEST(AuditLogTest, TruncationDetected) {
  tee::TrustedExecutionEnvironment tee("audit-cell3",
                                       tee::DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("audit").ok());
  AuditLog log(&tee, "audit");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        log.Append(AuditEntry{0, 0, "s", "read", "o", true, ""}).ok());
  }
  // A provider that drops the last (incriminating) entry is caught by the
  // expected count.
  AuditLog shorter(&tee, "audit");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        shorter.Append(AuditEntry{0, 0, "s", "read", "o", true, ""}).ok());
  }
  auto short_export = shorter.Export();
  ASSERT_TRUE(short_export.ok());
  EXPECT_TRUE(AuditLog::VerifyAndDecrypt(*short_export, &tee, "audit", 4)
                  .status()
                  .IsIntegrityViolation());
}

TEST(AuditLogTest, InsiderResealReorderingDetected) {
  // The strongest adversary for the v2 format: an *insider holding the
  // AEAD key* who opens the sealed journal, swaps two records, and
  // re-seals under the original associated data. The AEAD accepts the
  // forgery (right key, right AAD) — the hash-chain walk against the
  // sealed-in anchors is what must catch it.
  tee::TrustedExecutionEnvironment tee("audit-cell4",
                                       tee::DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("audit").ok());
  AuditLog log(&tee, "audit");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        log.Append(AuditEntry{0, 0, "s", "a" + std::to_string(i), "o", true,
                              ""})
            .ok());
  }
  auto exported_or = log.Export();
  ASSERT_TRUE(exported_or.ok());

  // Parse the v2 wire: magic | count | chain head | sealed journal.
  BinaryReader r(*exported_or);
  ASSERT_EQ(*r.GetString(), "tc.audit.export.v2");
  uint64_t count = *r.GetU64();
  Bytes head = *r.GetBytes();
  Bytes sealed = *r.GetBytes();
  auto make_aad = [&count, &head] {
    BinaryWriter w;
    w.PutString("tc.audit.v2");
    w.PutU64(count);
    w.PutBytes(head);
    return w.Take();
  };
  auto stream = tee.Open("audit", make_aad(), sealed);
  ASSERT_TRUE(stream.ok());

  // Swap the first two journal items and re-seal under the same AAD.
  BinaryReader js(*stream);
  ASSERT_EQ(*js.GetString(), "tc.obs.journal.v1");
  uint64_t items = *js.GetVarint();
  ASSERT_GE(items, 2u);
  std::vector<std::pair<uint8_t, Bytes>> parsed;
  for (uint64_t i = 0; i < items; ++i) {
    uint8_t tag = *js.GetU8();
    parsed.emplace_back(tag, *js.GetBytes());
  }
  std::swap(parsed[0], parsed[1]);
  BinaryWriter spliced;
  spliced.PutString("tc.obs.journal.v1");
  spliced.PutVarint(items);
  for (const auto& [tag, payload] : parsed) {
    spliced.PutU8(tag);
    spliced.PutBytes(payload);
  }
  auto resealed = tee.Seal("audit", make_aad(), spliced.Take());
  ASSERT_TRUE(resealed.ok());
  BinaryWriter w;
  w.PutString("tc.audit.export.v2");
  w.PutU64(count);
  w.PutBytes(head);
  w.PutBytes(*resealed);
  EXPECT_TRUE(AuditLog::VerifyAndDecrypt(w.Take(), &tee, "audit", 3)
                  .status()
                  .IsIntegrityViolation());
}

}  // namespace
}  // namespace tc::policy
