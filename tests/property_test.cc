// Property-style parameterized sweeps (TEST_P) over the invariants the
// platform's security and durability arguments rest on.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "tc/common/codec.h"
#include "tc/common/rng.h"
#include "tc/compute/kanon.h"
#include "tc/compute/secure_aggregation.h"
#include "tc/crypto/aead.h"
#include "tc/crypto/bignum.h"
#include "tc/crypto/merkle.h"
#include "tc/crypto/shamir.h"
#include "tc/db/timeseries.h"
#include "tc/policy/ucon.h"
#include "tc/storage/flash_device.h"
#include "tc/storage/log_store.h"
#include "tc/storage/page_transform.h"
#include "tc/tee/tee.h"
#include "tc/testing/crash_point_runner.h"

namespace tc {
namespace {

// ---------------------------------------------------------------- codec

class CodecRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundTrip, RandomSequencesSurvive) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    // Generate a random schema of puts, then read it back.
    std::vector<int> kinds;
    BinaryWriter w;
    std::vector<uint64_t> ints;
    std::vector<std::string> strings;
    int n = static_cast<int>(rng.NextInt(1, 30));
    for (int i = 0; i < n; ++i) {
      int kind = static_cast<int>(rng.NextBelow(3));
      kinds.push_back(kind);
      switch (kind) {
        case 0: {
          uint64_t v = rng.NextU64();
          ints.push_back(v);
          w.PutVarint(v);
          break;
        }
        case 1: {
          uint64_t v = rng.NextU64();
          ints.push_back(v);
          w.PutU64(v);
          break;
        }
        default: {
          std::string s = ToString(rng.NextBytes(rng.NextBelow(60)));
          strings.push_back(s);
          w.PutString(s);
          break;
        }
      }
    }
    BinaryReader r(w.buffer());
    size_t int_idx = 0, str_idx = 0;
    for (int kind : kinds) {
      switch (kind) {
        case 0:
          ASSERT_EQ(*r.GetVarint(), ints[int_idx++]);
          break;
        case 1:
          ASSERT_EQ(*r.GetU64(), ints[int_idx++]);
          break;
        default:
          ASSERT_EQ(*r.GetString(), strings[str_idx++]);
          break;
      }
    }
    ASSERT_TRUE(r.AtEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------------------- bignum

class BigIntAlgebra : public ::testing::TestWithParam<size_t> {};

TEST_P(BigIntAlgebra, DivModMulIdentities) {
  using crypto::BigInt;
  size_t bits = GetParam();
  Rng rng(bits);
  for (int i = 0; i < 40; ++i) {
    BigInt a = BigInt::FromBytesBE(rng.NextBytes((bits + 7) / 8));
    BigInt b = BigInt::FromBytesBE(rng.NextBytes((bits + 15) / 16));
    if (b.IsZero()) continue;
    BigInt rem;
    BigInt q = BigInt::DivMod(a, b, &rem);
    // a = q*b + r with r < b.
    ASSERT_EQ(BigInt::Add(BigInt::Mul(q, b), rem), a);
    ASSERT_LT(rem, b);
    // (a + b) - b == a; (a * b) / b == a when exact.
    ASSERT_EQ(BigInt::Sub(BigInt::Add(a, b), b), a);
    BigInt prod = BigInt::Mul(a, b);
    BigInt r2;
    ASSERT_EQ(BigInt::DivMod(prod, b, &r2), a);
    ASSERT_TRUE(r2.IsZero());
  }
}

TEST_P(BigIntAlgebra, ModExpHomomorphism) {
  using crypto::BigInt;
  size_t bits = GetParam();
  crypto::SecureRandom rng(ToBytes("modexp-" + std::to_string(bits)));
  BigInt m = BigInt::GeneratePrime(rng, bits);
  for (int i = 0; i < 5; ++i) {
    BigInt g = BigInt::RandomBelow(rng, m);
    BigInt x = BigInt::RandomBits(rng, bits / 2);
    BigInt y = BigInt::RandomBits(rng, bits / 2);
    // g^x * g^y == g^(x+y) (mod m).
    BigInt lhs = BigInt::ModMul(BigInt::ModExp(g, x, m),
                                BigInt::ModExp(g, y, m), m);
    BigInt rhs = BigInt::ModExp(g, BigInt::Add(x, y), m);
    ASSERT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, BigIntAlgebra,
                         ::testing::Values(64, 128, 256, 521));

// ----------------------------------------------------------------- AEAD

class AeadCorruption : public ::testing::TestWithParam<size_t> {};

TEST_P(AeadCorruption, EverySingleByteFlipIsRejected) {
  Bytes key(32, 0x11), nonce(12, 0x22), aad = ToBytes("ctx");
  Rng rng(GetParam());
  Bytes pt = rng.NextBytes(GetParam());
  Bytes sealed = *crypto::AeadSeal(key, nonce, aad, pt);
  // Flip a sample of byte positions (all positions for small payloads).
  size_t step = std::max<size_t>(1, sealed.size() / 64);
  for (size_t pos = 0; pos < sealed.size(); pos += step) {
    Bytes tampered = sealed;
    tampered[pos] ^= 0x01;
    ASSERT_FALSE(crypto::AeadOpen(key, nonce, aad, tampered).ok())
        << "byte " << pos;
  }
  ASSERT_EQ(*crypto::AeadOpen(key, nonce, aad, sealed), pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadCorruption,
                         ::testing::Values(1, 16, 255, 2048));

// --------------------------------------------------------------- Merkle

class MerkleAllLeaves : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleAllLeaves, ProofsVerifyAndCrossProofsFail) {
  size_t n = GetParam();
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(ToBytes("leaf-" + std::to_string(i * 7919)));
  }
  auto tree = *crypto::MerkleTree::Build(leaves);
  for (size_t i = 0; i < n; ++i) {
    auto proof = *tree.Prove(i);
    ASSERT_TRUE(crypto::MerkleTree::Verify(tree.root(), leaves[i], proof));
    // The same proof must not validate a different leaf.
    ASSERT_FALSE(crypto::MerkleTree::Verify(tree.root(),
                                            leaves[(i + 1) % n], proof));
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleAllLeaves,
                         ::testing::Values(2, 3, 15, 16, 17, 100));

// --------------------------------------------------------------- Shamir

class ShamirThresholds
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShamirThresholds, EveryThresholdSubsetReconstructs) {
  auto [threshold, count] = GetParam();
  crypto::SecureRandom rng(
      ToBytes("shamir-prop-" + std::to_string(threshold)));
  Bytes key = rng.NextBytes(32);
  auto shares = *crypto::ShamirSecretSharing::SplitKey(key, threshold, count,
                                                       rng);
  // Sliding windows of exactly `threshold` shares.
  for (int start = 0; start + threshold <= count; ++start) {
    std::vector<crypto::ShamirShare> subset(
        shares.begin() + start, shares.begin() + start + threshold);
    ASSERT_EQ(*crypto::ShamirSecretSharing::ReconstructKey(subset), key);
  }
  // All shares together also work.
  ASSERT_EQ(*crypto::ShamirSecretSharing::ReconstructKey(shares), key);
}

INSTANTIATE_TEST_SUITE_P(Configs, ShamirThresholds,
                         ::testing::Values(std::pair{1, 3}, std::pair{2, 3},
                                           std::pair{3, 5}, std::pair{5, 8},
                                           std::pair{7, 7}));

// --------------------------------------------- log store crash recovery

class StoreRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreRecovery, FlushedStateSurvivesRandomWorkloads) {
  storage::FlashGeometry geo;
  geo.page_size = 512;
  geo.pages_per_block = 8;
  geo.block_count = 128;
  storage::FlashDevice flash(geo);
  storage::PlainPageTransform plain;
  std::map<std::string, Bytes> reference;
  Rng rng(GetParam());
  {
    auto store = *storage::LogStore::Open(&flash, &plain,
                                          storage::LogStoreOptions{});
    for (int op = 0; op < 600; ++op) {
      std::string key = "k" + std::to_string(rng.NextBelow(40));
      if (rng.NextBernoulli(0.75)) {
        Bytes value = rng.NextBytes(1 + rng.NextBelow(80));
        ASSERT_TRUE(store->Put(key, value).ok());
        reference[key] = value;
      } else {
        (void)store->Delete(key);
        reference.erase(key);
      }
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  // Power cycle.
  auto store = *storage::LogStore::Open(&flash, &plain,
                                        storage::LogStoreOptions{});
  std::map<std::string, Bytes> recovered;
  ASSERT_TRUE(store
                  ->ScanAll([&](const std::string& k, const Bytes& v) {
                    recovered[k] = v;
                  })
                  .ok());
  ASSERT_EQ(recovered, reference);
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(*store->Get(key), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreRecovery,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// -------------------------------------------- fault-injection corruption

// Bit flips on flash pages under the TEE-keyed AEAD transform must always
// surface as a decode error — never as silently wrong data. Each trial
// flips 1-8 random bits on a random programmed page and re-reads.
class AeadFlashCorruption : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AeadFlashCorruption, EveryBitFlipIsDetected) {
  storage::FlashGeometry geo;
  geo.page_size = 512;
  geo.pages_per_block = 8;
  geo.block_count = 32;
  tee::TrustedExecutionEnvironment tee("corruption-owner",
                                       tee::DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("storage-root").ok());
  tc::testing::CorruptionSweepReport report = tc::testing::RunCorruptionSweep(
      geo,
      [&tee] {
        return std::make_unique<storage::EncryptedPageTransform>(
            &tee, "storage-root");
      },
      /*trials=*/25, GetParam());
  EXPECT_EQ(report.trials, 25u);
  EXPECT_EQ(report.silent_wrong_reads, 0u);
  EXPECT_EQ(report.undetected, 0u);
  EXPECT_EQ(report.detected, report.trials);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AeadFlashCorruption,
                         ::testing::Values(101, 202, 303, 404));

// ------------------------------------------------------ ts chunk codec

class TimeSeriesCodec : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeSeriesCodec, ChunkRoundTripArbitraryDeltas) {
  Rng rng(GetParam());
  std::vector<db::Reading> readings;
  Timestamp t = static_cast<Timestamp>(rng.NextBelow(1000000));
  int64_t v = rng.NextInt(-5000, 5000);
  int n = static_cast<int>(rng.NextInt(1, 800));
  for (int i = 0; i < n; ++i) {
    t += rng.NextInt(0, 900);        // Irregular sampling, repeats allowed.
    v += rng.NextInt(-4000, 4000);   // Signed jumps.
    readings.push_back(db::Reading{t, v});
  }
  Bytes encoded = db::TimeSeriesStore::EncodeChunk(readings);
  auto decoded = db::TimeSeriesStore::DecodeChunk(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(*decoded, readings);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesCodec,
                         ::testing::Values(7, 8, 9, 10));

// ------------------------------------------------------------- masking

class MaskingDropout : public ::testing::TestWithParam<int> {};

TEST_P(MaskingDropout, RepairedSumMatchesContributorSubset) {
  // White-box exactness check: run the protocol, then verify the sum via
  // a shadow run with the same dropout RNG sequence.
  const int n = 30;
  double dropout = GetParam() / 100.0;
  std::vector<int64_t> values(n);
  Rng vals(99);
  for (auto& v : values) v = vals.NextInt(0, 1000);
  auto channels =
      compute::SecureAggregation::PairwiseChannels::Setup(n, false, 3);

  cloud::CloudInfrastructure cloud;
  Rng protocol_rng(1234 + GetParam());
  auto outcome = compute::SecureAggregation::RunAdditiveMasking(
      cloud, values, channels, 5, dropout, protocol_rng);
  ASSERT_TRUE(outcome.ok());

  Rng shadow_rng(1234 + GetParam());
  int64_t expected = 0;
  int alive = 0;
  for (int i = 0; i < n; ++i) {
    bool dropped = dropout > 0 && shadow_rng.NextBernoulli(dropout);
    if (!dropped) {
      expected += values[i];
      ++alive;
    }
  }
  ASSERT_EQ(outcome->contributors, alive);
  ASSERT_EQ(outcome->sum, expected);
}

INSTANTIATE_TEST_SUITE_P(DropoutPct, MaskingDropout,
                         ::testing::Values(0, 5, 15, 30, 50));

// --------------------------------------------------------------- k-anon

class KAnonProperty : public ::testing::TestWithParam<int> {};

TEST_P(KAnonProperty, OutputAlwaysSatisfiesK) {
  int k = GetParam();
  Rng rng(k);
  for (int round = 0; round < 5; ++round) {
    std::vector<compute::MicroRecord> records;
    int n = k + static_cast<int>(rng.NextBelow(300));
    for (int i = 0; i < n; ++i) {
      records.push_back(compute::MicroRecord{
          static_cast<int>(rng.NextInt(0, 99)),
          std::to_string(10000 + rng.NextBelow(90000)),
          "s" + std::to_string(rng.NextBelow(5))});
    }
    auto report = compute::KAnonymizer::Anonymize(records, k);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(compute::KAnonymizer::IsKAnonymous(report->records, k));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KAnonProperty, ::testing::Values(2, 3, 10, 40));

// ------------------------------------------------------------------ UCON

class UconQuota : public ::testing::TestWithParam<int> {};

TEST_P(UconQuota, QuotaNeverExceededUnderRandomRequests) {
  int max_uses = GetParam();
  policy::UsageRule rule;
  rule.id = "quota";
  rule.rights = {policy::Right::kRead};
  rule.max_uses = static_cast<uint64_t>(max_uses);
  policy::Policy p{"p", "owner", {rule}};
  policy::DecisionPoint pdp;
  Rng rng(max_uses);
  std::map<std::string, int> allowed_per_subject;
  for (int i = 0; i < 300; ++i) {
    std::string subject = "s" + std::to_string(rng.NextBelow(4));
    policy::AccessRequest req{subject, policy::Right::kRead, {}, 0};
    if (pdp.EvaluateAndConsume(p, req).allowed) {
      ++allowed_per_subject[subject];
    }
  }
  for (const auto& [subject, count] : allowed_per_subject) {
    ASSERT_LE(count, max_uses);
    ASSERT_EQ(pdp.UseCount("p", "quota", subject),
              static_cast<uint64_t>(count));
  }
}

INSTANTIATE_TEST_SUITE_P(Quotas, UconQuota, ::testing::Values(1, 3, 10, 75));

}  // namespace
}  // namespace tc
