#include <gtest/gtest.h>

#include <memory>

#include "tc/cell/cell.h"

namespace tc::cell {
namespace {

class RecoveryApprovalTest : public ::testing::Test {
 protected:
  void SetUp() override { clock_.Set(MakeTimestamp(2013, 4, 1, 10, 0, 0)); }

  std::unique_ptr<TrustedCell> MakeCell(const std::string& id,
                                        const std::string& owner,
                                        const std::string& enrollment = "") {
    TrustedCell::Config config;
    config.cell_id = id;
    config.owner = owner;
    config.device_class = tee::DeviceClass::kSmartPhone;
    config.enrollment_secret = enrollment;
    auto cell = TrustedCell::Create(config, &cloud_, &directory_, &clock_);
    TC_CHECK(cell.ok());
    return std::move(*cell);
  }

  SimulatedClock clock_;
  cloud::CloudInfrastructure cloud_;
  CellDirectory directory_;
};

TEST_F(RecoveryApprovalTest, GuardianRecoveryRestoresAccess) {
  // Alice's phone (with the correct enrollment secret) stores data and
  // escrows her master key to three guardians, threshold 2.
  auto alice = MakeCell("alice-phone", "alice", "correct-horse");
  auto g1 = MakeCell("guardian-1", "gw1");
  auto g2 = MakeCell("guardian-2", "gw2");
  auto g3 = MakeCell("guardian-3", "gw3");

  auto doc = *alice->StoreDocument("will", "important testament",
                                   ToBytes("my last will"),
                                   MakeOwnerPolicy("alice"));
  ASSERT_TRUE(alice->SyncPush().ok());
  ASSERT_TRUE(
      alice->EnrollGuardians({"guardian-1", "guardian-2", "guardian-3"}, 2)
          .ok());
  for (auto* g : {&g1, &g2, &g3}) {
    ASSERT_TRUE((*g)->ProcessInbox().ok());
    EXPECT_TRUE((*g)->HoldsGuardianShareFor("alice"));
  }

  // The phone is lost. Alice gets a new device but has forgotten her
  // enrollment secret — the provisional master cannot decrypt her space.
  auto replacement = MakeCell("alice-new-phone", "alice", "");
  // The provisional master cannot even open the manifest.
  EXPECT_FALSE(replacement->SyncPull().ok());
  EXPECT_FALSE(replacement->FetchDocument(doc).ok());

  // Two guardians release their shares to the new device.
  ASSERT_TRUE(g1->ReleaseGuardianShare("alice", "alice-new-phone").ok());
  ASSERT_TRUE(g3->ReleaseGuardianShare("alice", "alice-new-phone").ok());
  ASSERT_TRUE(replacement->ProcessInbox().ok());
  auto shares = replacement->TakeMessages("recovery-share");
  ASSERT_EQ(shares.size(), 2u);
  auto used = replacement->CompleteRecovery(shares);
  ASSERT_TRUE(used.ok());
  EXPECT_EQ(*used, 2);

  // With the recovered master, the new cell decrypts the personal space.
  ASSERT_TRUE(replacement->SyncPull().ok());
  auto content = replacement->FetchDocument(doc);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, ToBytes("my last will"));
}

TEST_F(RecoveryApprovalTest, SingleShareIsUseless) {
  auto alice = MakeCell("alice-phone", "alice", "secret");
  auto g1 = MakeCell("guardian-1", "gw1");
  auto g2 = MakeCell("guardian-2", "gw2");
  auto doc = *alice->StoreDocument("d", "k", ToBytes("x"),
                                   MakeOwnerPolicy("alice"));
  ASSERT_TRUE(alice->SyncPush().ok());
  ASSERT_TRUE(alice->EnrollGuardians({"guardian-1", "guardian-2"}, 2).ok());
  ASSERT_TRUE(g1->ProcessInbox().ok());
  ASSERT_TRUE(g2->ProcessInbox().ok());

  auto replacement = MakeCell("alice-new", "alice", "");
  ASSERT_TRUE(g1->ReleaseGuardianShare("alice", "alice-new").ok());
  ASSERT_TRUE(replacement->ProcessInbox().ok());
  auto shares = replacement->TakeMessages("recovery-share");
  ASSERT_EQ(shares.size(), 1u);
  // Reconstruction from one share of a threshold-2 split yields garbage
  // (or an out-of-range point); either way the space stays locked.
  auto used = replacement->CompleteRecovery(shares);
  if (used.ok()) {
    ASSERT_TRUE(replacement->SyncPull().ok() ||
                !replacement->SyncPull().ok());
    EXPECT_FALSE(replacement->FetchDocument(doc).ok());
  }
}

TEST_F(RecoveryApprovalTest, GuardianCannotReadEscrowedSpace) {
  auto alice = MakeCell("alice-phone", "alice", "secret");
  auto g1 = MakeCell("guardian-1", "gw1");
  auto doc = *alice->StoreDocument("diary", "private", ToBytes("dear diary"),
                                   MakeOwnerPolicy("alice"));
  ASSERT_TRUE(alice->SyncPush().ok());
  ASSERT_TRUE(alice->EnrollGuardians({"guardian-1"}, 1).ok());
  ASSERT_TRUE(g1->ProcessInbox().ok());
  // The guardian holds a share (here even threshold 1!) but has no
  // metadata/key-derivation path registered for Alice's space documents —
  // and a well-behaved guardian cell's firmware only ever re-wraps it.
  // What we can assert mechanically: the share alone doesn't let the
  // guardian fetch Alice's document through its own API.
  EXPECT_FALSE(g1->FetchDocument(doc).ok());
}

TEST_F(RecoveryApprovalTest, ReleaseWithoutShareFails) {
  auto g1 = MakeCell("guardian-1", "gw1");
  auto someone = MakeCell("someone", "who");
  EXPECT_TRUE(
      g1->ReleaseGuardianShare("alice", "someone").IsNotFound());
}

TEST_F(RecoveryApprovalTest, ApprovalFlowApprove) {
  auto alice = MakeCell("alice-phone", "alice");
  auto bob = MakeCell("bob-phone", "bob");

  // Alice photographs Bob; the photo is pending until Bob approves.
  auto doc = alice->ProposeDocumentReferencing(
      "bob-phone", "Group photo", "photo group",
      ToBytes("[jpeg with bob in frame]"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(alice->FetchDocument(*doc).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(alice->ShareDocument(*doc, "bob-phone",
                                 MakeOwnerPolicy("alice"))
                .code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(bob->ProcessInbox().ok());
  auto requests = bob->TakeMessages("approval-request");
  ASSERT_EQ(requests.size(), 1u);
  ASSERT_TRUE(bob->RespondToApproval(requests[0], true).ok());

  ASSERT_TRUE(alice->ProcessInbox().ok());
  auto result = alice->ProcessApprovalResponses();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->first, 1);
  EXPECT_EQ(result->second, 0);
  EXPECT_TRUE(alice->FetchDocument(*doc).ok());
}

TEST_F(RecoveryApprovalTest, ApprovalFlowReject) {
  auto alice = MakeCell("alice-phone", "alice");
  auto bob = MakeCell("bob-phone", "bob");
  auto doc = alice->ProposeDocumentReferencing(
      "bob-phone", "Embarrassing photo", "photo karaoke",
      ToBytes("[jpeg]"), MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(bob->ProcessInbox().ok());
  auto requests = bob->TakeMessages("approval-request");
  ASSERT_EQ(requests.size(), 1u);
  ASSERT_TRUE(bob->RespondToApproval(requests[0], false).ok());

  ASSERT_TRUE(alice->ProcessInbox().ok());
  auto result = alice->ProcessApprovalResponses();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->first, 0);
  EXPECT_EQ(result->second, 1);
  // The document is gone: metadata erased, key destroyed.
  EXPECT_TRUE(alice->FetchDocument(*doc).status().IsNotFound());
  EXPECT_TRUE(alice->SearchDocuments("karaoke")->empty());
}

TEST_F(RecoveryApprovalTest, ApprovalSurvivesOnlyForPending) {
  auto alice = MakeCell("alice-phone", "alice");
  auto bob = MakeCell("bob-phone", "bob");
  auto doc = alice->ProposeDocumentReferencing(
      "bob-phone", "photo", "photo", ToBytes("[jpeg]"),
      MakeOwnerPolicy("alice"));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(bob->ProcessInbox().ok());
  auto requests = bob->TakeMessages("approval-request");
  // Bob answers twice (client retry); the second response is a no-op.
  ASSERT_TRUE(bob->RespondToApproval(requests[0], true).ok());
  ASSERT_TRUE(bob->RespondToApproval(requests[0], false).ok());
  ASSERT_TRUE(alice->ProcessInbox().ok());
  auto result = alice->ProcessApprovalResponses();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->first, 1);
  EXPECT_EQ(result->second, 0);  // Second response ignored (not pending).
  EXPECT_TRUE(alice->FetchDocument(*doc).ok());
}

}  // namespace
}  // namespace tc::cell
