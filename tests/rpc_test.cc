// The cloud behind a real wire: frame-codec property sweeps, the TCP
// server/client runtime, and server-lifecycle guarantees (graceful
// shutdown, reconnect-with-token-replay, pool exhaustion).
//
// Socket tests probe loopback availability and GTEST_SKIP with a printed
// reason where the environment forbids AF_INET — the codec tests always
// run.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tc/cloud/fault_injector.h"
#include "tc/cloud/infrastructure.h"
#include "tc/common/rng.h"
#include "tc/fleet/fleet.h"
#include "tc/net/channel.h"
#include "tc/obs/trace.h"
#include "tc/rpc/client.h"
#include "tc/rpc/server.h"
#include "tc/rpc/socket_transport.h"
#include "tc/rpc/wire.h"
#include "tc/rpc/wire_harness.h"

namespace tc::rpc {
namespace {

using cloud::CloudInfrastructure;

#define SKIP_WITHOUT_LOOPBACK()                                           \
  do {                                                                    \
    if (!RpcServer::LoopbackAvailable()) {                                \
      GTEST_SKIP() << "loopback TCP sockets unavailable in this "         \
                      "environment; socket-path test skipped";            \
    }                                                                     \
  } while (false)

// ---------------------------------------------------------------------------
// Frame header codec
// ---------------------------------------------------------------------------

TEST(WireFrameTest, HeaderRoundTripsEveryOp) {
  for (uint8_t op = 0; op <= static_cast<uint8_t>(RpcOp::kCommitTxn); ++op) {
    FrameHeader h;
    h.op = static_cast<RpcOp>(op);
    h.flags = (op % 2) ? kFlagResponse : 0;
    h.request_id = 0x1122334455667788ULL + op;
    h.trace.trace_id = 0xdeadbeefcafef00dULL;
    h.trace.span_id = 42 + op;
    h.trace.parent_id = 7;
    h.payload_size = 123456;
    Bytes buf = EncodeFrameHeader(h);
    ASSERT_EQ(buf.size(), kFrameHeaderBytes);
    auto decoded = DecodeFrameHeader(buf.data(), buf.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->op, h.op);
    EXPECT_EQ(decoded->flags, h.flags);
    EXPECT_EQ(decoded->request_id, h.request_id);
    EXPECT_EQ(decoded->trace.trace_id, h.trace.trace_id);
    EXPECT_EQ(decoded->trace.span_id, h.trace.span_id);
    EXPECT_EQ(decoded->trace.parent_id, h.trace.parent_id);
    EXPECT_EQ(decoded->payload_size, h.payload_size);
    EXPECT_EQ(decoded->response(), h.flags == kFlagResponse);
  }
}

TEST(WireFrameTest, RejectsBadMagicVersionOpAndOversize) {
  FrameHeader h;
  Bytes good = EncodeFrameHeader(h);

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(DecodeFrameHeader(bad_magic.data(), bad_magic.size())
                .status()
                .code(),
            StatusCode::kCorruption);

  // Version mismatch is distinguishable from garbage: a future peer gets
  // kUnimplemented, not kCorruption.
  Bytes bad_version = good;
  bad_version[4] = 0x7f;
  EXPECT_EQ(DecodeFrameHeader(bad_version.data(), bad_version.size())
                .status()
                .code(),
            StatusCode::kUnimplemented);

  Bytes bad_op = good;
  bad_op[6] = 0xee;
  EXPECT_EQ(DecodeFrameHeader(bad_op.data(), bad_op.size()).status().code(),
            StatusCode::kCorruption);

  Bytes oversize = good;
  // payload_size lives at offset 40 (little-endian u32): ask for 4 GiB.
  oversize[40] = oversize[41] = oversize[42] = oversize[43] = 0xff;
  EXPECT_EQ(
      DecodeFrameHeader(oversize.data(), oversize.size()).status().code(),
      StatusCode::kCorruption);

  // Short buffers never over-read.
  for (size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_FALSE(DecodeFrameHeader(good.data(), n).ok());
  }
}

// ---------------------------------------------------------------------------
// Payload codecs: round-trip property sweep over every RPC type
// ---------------------------------------------------------------------------

Bytes RandomPayload(Rng& rng, size_t n) { return rng.NextBytes(n); }

cloud::SnapshotDescriptor RandomSnapshot(Rng& rng) {
  cloud::SnapshotDescriptor snap;
  snap.base_seq = rng.NextU64() % 100000;
  for (size_t i = rng.NextU64() % 5; i > 0; --i) {
    snap.extra_seqs.push_back(snap.base_seq + 1 + rng.NextU64() % 1000);
  }
  std::sort(snap.extra_seqs.begin(), snap.extra_seqs.end());
  for (size_t i = rng.NextU64() % 4; i > 0; --i) {
    snap.shard_high.push_back(rng.NextU64() % 100000);
  }
  return snap;
}

TEST(WireCodecTest, PutBatchRoundTrip) {
  Rng rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<std::string, Bytes>> items;
    std::vector<std::string> tokens;
    size_t n = rng.NextU64() % 6;  // Includes the empty batch.
    for (size_t i = 0; i < n; ++i) {
      items.emplace_back("blob" + std::to_string(rng.NextU64() % 100),
                         RandomPayload(rng, rng.NextU64() % 2048));
      tokens.push_back("tok/" + std::to_string(i));
    }
    if (iter % 3 == 0) tokens.clear();  // Tokenless batches are legal.
    Bytes wire = EncodePutBatchRequest(items, tokens);
    auto decoded = DecodePutBatchRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->items.size(), items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(decoded->items[i].first, items[i].first);
      EXPECT_EQ(decoded->items[i].second, items[i].second);
    }
    EXPECT_EQ(decoded->tokens, tokens);
  }
}

TEST(WireCodecTest, PutBatchResponseRoundTripIncludingPartialAndErrors) {
  Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    CloudInfrastructure::BatchPutOutcome out;
    size_t n = rng.NextU64() % 5;
    for (size_t i = 0; i < n; ++i) {
      bool acked = rng.NextU64() % 2;
      out.acked.push_back(acked ? 1 : 0);
      out.versions.push_back(acked ? 1 + rng.NextU64() % 50 : 0);
    }
    if (iter % 2) out.status = Status::Unavailable("torn batch");
    out.delay_us = static_cast<uint32_t>(rng.NextU64());
    out.fault_ordinal = rng.NextU64();
    auto decoded = DecodePutBatchResponse(EncodePutBatchResponse(out));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->status, out.status);
    EXPECT_EQ(decoded->versions, out.versions);
    EXPECT_EQ(decoded->acked, out.acked);
    EXPECT_EQ(decoded->delay_us, out.delay_us);
    EXPECT_EQ(decoded->fault_ordinal, out.fault_ordinal);
  }
}

TEST(WireCodecTest, GetBlobRoundTripEmptyAndLarge) {
  Rng rng(3);
  for (size_t size : {size_t{0}, size_t{1}, size_t{64 * 1024}}) {
    auto id = DecodeGetBlobRequest(EncodeGetBlobRequest("some/blob"));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), "some/blob");

    GetBlobResponse resp;
    resp.data = RandomPayload(rng, size);
    resp.delay_us = 777;
    auto decoded = DecodeGetBlobResponse(EncodeGetBlobResponse(resp));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->data, resp.data);
    EXPECT_EQ(decoded->delay_us, resp.delay_us);
    EXPECT_TRUE(decoded->status.ok());
  }
  GetBlobResponse not_found;
  not_found.status = Status::NotFound("no blob");
  auto decoded = DecodeGetBlobResponse(EncodeGetBlobResponse(not_found));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded->status.message(), "no blob");
}

TEST(WireCodecTest, SnapshotRpcsRoundTrip) {
  Rng rng(4);
  for (int iter = 0; iter < 50; ++iter) {
    GetSnapshotResponse snap_resp;
    snap_resp.snapshot = RandomSnapshot(rng);
    snap_resp.delay_us = 5;
    auto snap = DecodeGetSnapshotResponse(
        EncodeGetSnapshotResponse(snap_resp));
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(snap->snapshot.base_seq, snap_resp.snapshot.base_seq);
    EXPECT_EQ(snap->snapshot.extra_seqs, snap_resp.snapshot.extra_seqs);
    EXPECT_EQ(snap->snapshot.shard_high, snap_resp.snapshot.shard_high);

    GetAtSnapshotRequest req;
    req.id = "doc" + std::to_string(iter);
    req.snapshot = RandomSnapshot(rng);
    auto dreq = DecodeGetAtSnapshotRequest(EncodeGetAtSnapshotRequest(req));
    ASSERT_TRUE(dreq.ok());
    EXPECT_EQ(dreq->id, req.id);
    EXPECT_EQ(dreq->snapshot.base_seq, req.snapshot.base_seq);
    EXPECT_EQ(dreq->snapshot.extra_seqs, req.snapshot.extra_seqs);

    GetAtSnapshotResponse resp;
    resp.read.data = RandomPayload(rng, rng.NextU64() % 512);
    resp.read.version = rng.NextU64();
    resp.read.commit_seq = rng.NextU64();
    auto dresp =
        DecodeGetAtSnapshotResponse(EncodeGetAtSnapshotResponse(resp));
    ASSERT_TRUE(dresp.ok());
    EXPECT_EQ(dresp->read.data, resp.read.data);
    EXPECT_EQ(dresp->read.version, resp.read.version);
    EXPECT_EQ(dresp->read.commit_seq, resp.read.commit_seq);
  }
}

TEST(WireCodecTest, TxnRoundTrip) {
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    cloud::TxnRequest req;
    req.token = "txn/" + std::to_string(iter);
    req.snapshot = RandomSnapshot(rng);
    for (size_t i = rng.NextU64() % 4; i > 0; --i) {
      req.reads.push_back({"key" + std::to_string(rng.NextU64() % 10),
                           rng.NextU64() % 100});
    }
    for (size_t i = rng.NextU64() % 4; i > 0; --i) {
      cloud::TxnWrite w;
      w.id = "key" + std::to_string(rng.NextU64() % 10);
      w.data = RandomPayload(rng, rng.NextU64() % 256);
      w.base_version =
          (rng.NextU64() % 4 == 0) ? cloud::kBaseVersionAny : rng.NextU64() % 100;
      req.writes.push_back(std::move(w));
    }
    auto dreq = DecodeTxnRequest(EncodeTxnRequest(req));
    ASSERT_TRUE(dreq.ok()) << dreq.status().ToString();
    EXPECT_EQ(dreq->token, req.token);
    ASSERT_EQ(dreq->reads.size(), req.reads.size());
    for (size_t i = 0; i < req.reads.size(); ++i) {
      EXPECT_EQ(dreq->reads[i].id, req.reads[i].id);
      EXPECT_EQ(dreq->reads[i].version, req.reads[i].version);
    }
    ASSERT_EQ(dreq->writes.size(), req.writes.size());
    for (size_t i = 0; i < req.writes.size(); ++i) {
      EXPECT_EQ(dreq->writes[i].id, req.writes[i].id);
      EXPECT_EQ(dreq->writes[i].data, req.writes[i].data);
      EXPECT_EQ(dreq->writes[i].base_version, req.writes[i].base_version);
    }

    cloud::TxnOutcome out;
    out.committed = iter % 2;
    out.replayed = iter % 3 == 0;
    out.commit_seq = rng.NextU64();
    if (out.committed) {
      for (size_t i = 0; i < req.writes.size(); ++i) {
        out.versions.push_back(1 + rng.NextU64() % 100);
      }
    } else {
      out.status = Status::Aborted("conflict");
      out.conflict_id = "key3";
    }
    out.delay_us = static_cast<uint32_t>(rng.NextU64());
    out.fault_ordinal = rng.NextU64();
    auto dout = DecodeTxnOutcome(EncodeTxnOutcome(out));
    ASSERT_TRUE(dout.ok());
    EXPECT_EQ(dout->status, out.status);
    EXPECT_EQ(dout->committed, out.committed);
    EXPECT_EQ(dout->replayed, out.replayed);
    EXPECT_EQ(dout->commit_seq, out.commit_seq);
    EXPECT_EQ(dout->versions, out.versions);
    EXPECT_EQ(dout->conflict_id, out.conflict_id);
  }
}

// Every decoder must reject every truncation of a valid payload without
// crashing or over-reading, and survive deterministic byte corruption
// (either failing cleanly or decoding *something* — never UB).
TEST(WireCodecTest, TruncationAndFuzzNeverCrashOrOverRead) {
  Rng rng(6);
  std::vector<std::pair<std::string, Bytes>> items = {
      {"a", RandomPayload(rng, 100)}, {"b", RandomPayload(rng, 3)}};
  std::vector<std::string> tokens = {"t1", "t2"};
  cloud::TxnRequest txn;
  txn.token = "txn/x";
  txn.snapshot = RandomSnapshot(rng);
  txn.reads.push_back({"k", 3});
  txn.writes.push_back({"k", RandomPayload(rng, 40), 3});
  cloud::TxnOutcome txn_out;
  txn_out.committed = true;
  txn_out.versions = {4};
  CloudInfrastructure::BatchPutOutcome put_out;
  put_out.versions = {1, 2};
  put_out.acked = {1, 1};

  GetAtSnapshotRequest at_req;
  at_req.id = "k";
  at_req.snapshot = RandomSnapshot(rng);
  GetSnapshotResponse snap_resp;
  snap_resp.snapshot = RandomSnapshot(rng);
  GetAtSnapshotResponse at_resp;
  at_resp.read.data = RandomPayload(rng, 30);

  GetBlobResponse blob_resp;
  blob_resp.data = RandomPayload(rng, 64);

  struct Case {
    const char* name;
    Bytes wire;
    std::function<Status(const Bytes&)> decode;
  };
  std::vector<Case> cases = {
      {"put_req", EncodePutBatchRequest(items, tokens),
       [](const Bytes& b) { return DecodePutBatchRequest(b).status(); }},
      {"put_resp", EncodePutBatchResponse(put_out),
       [](const Bytes& b) { return DecodePutBatchResponse(b).status(); }},
      {"get_req", EncodeGetBlobRequest("blob/a"),
       [](const Bytes& b) { return DecodeGetBlobRequest(b).status(); }},
      {"get_resp", EncodeGetBlobResponse(blob_resp),
       [](const Bytes& b) { return DecodeGetBlobResponse(b).status(); }},
      {"snap_resp", EncodeGetSnapshotResponse(snap_resp),
       [](const Bytes& b) { return DecodeGetSnapshotResponse(b).status(); }},
      {"at_req", EncodeGetAtSnapshotRequest(at_req),
       [](const Bytes& b) { return DecodeGetAtSnapshotRequest(b).status(); }},
      {"at_resp", EncodeGetAtSnapshotResponse(at_resp),
       [](const Bytes& b) { return DecodeGetAtSnapshotResponse(b).status(); }},
      {"txn_req", EncodeTxnRequest(txn),
       [](const Bytes& b) { return DecodeTxnRequest(b).status(); }},
      {"txn_resp", EncodeTxnOutcome(txn_out),
       [](const Bytes& b) { return DecodeTxnOutcome(b).status(); }},
  };

  for (const auto& c : cases) {
    // Full payload decodes.
    EXPECT_TRUE(c.decode(c.wire).ok()) << c.name;
    // Every strict prefix fails cleanly (ASan enforces "no over-read").
    for (size_t n = 0; n < c.wire.size(); ++n) {
      Bytes truncated(c.wire.begin(), c.wire.begin() + n);
      Status s = c.decode(truncated);
      EXPECT_FALSE(s.ok()) << c.name << " decoded a " << n
                           << "-byte prefix of " << c.wire.size();
    }
    // Deterministic byte fuzz: flip each byte through a few values. The
    // decode may succeed (data bytes) or fail (structure bytes); it must
    // never crash, hang or over-read.
    for (size_t pos = 0; pos < c.wire.size(); ++pos) {
      for (uint8_t delta : {0x01, 0x80, 0xff}) {
        Bytes fuzzed = c.wire;
        fuzzed[pos] ^= delta;
        (void)c.decode(fuzzed);
      }
    }
    // Appended trailing garbage is rejected (framing is exact).
    Bytes padded = c.wire;
    padded.push_back(0xab);
    EXPECT_FALSE(c.decode(padded).ok()) << c.name;
  }
}

// ---------------------------------------------------------------------------
// Socket round-trips
// ---------------------------------------------------------------------------

class RpcSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!RpcServer::LoopbackAvailable()) {
      GTEST_SKIP() << "loopback TCP sockets unavailable in this "
                      "environment; socket-path test skipped";
    }
  }

  std::unique_ptr<RpcServer> StartServer(CloudInfrastructure* cloud,
                                         RpcServer::Options options = {}) {
    auto server = std::make_unique<RpcServer>(cloud, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }
};

TEST_F(RpcSocketTest, FullRpcSurfaceRoundTripsTheWire) {
  CloudInfrastructure cloud;
  auto server = StartServer(&cloud);
  SocketTransport transport("127.0.0.1", server->port());

  // PutBlobBatch with tokens.
  std::vector<std::pair<std::string, Bytes>> items = {
      {"doc/a", Bytes{1, 2, 3}}, {"doc/b", Bytes{9, 8, 7, 6}}};
  auto put = transport.PutBlobBatch(items, {"tok/a", "tok/b"});
  ASSERT_TRUE(put.status.ok()) << put.status.ToString();
  ASSERT_EQ(put.versions.size(), 2u);
  EXPECT_EQ(put.versions[0], 1u);
  EXPECT_EQ(put.acked, (std::vector<uint8_t>{1, 1}));

  // Token idempotency survives the wire: same token, same answer, no new
  // version.
  auto replay = transport.PutBlobBatch(items, {"tok/a", "tok/b"});
  ASSERT_TRUE(replay.status.ok());
  EXPECT_EQ(replay.versions, put.versions);
  EXPECT_EQ(cloud.LatestBlobVersion("doc/a").value_or(0), 1u);

  // GetBlob.
  uint32_t delay = 1234;
  auto got = transport.GetBlob("doc/a", &delay);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(delay, 0u);  // No injector attached: clean attempt.
  auto missing = transport.GetBlob("doc/none", nullptr);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Snapshot acquisition + snapshot read.
  auto snap = transport.GetSnapshot(nullptr);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto at = transport.GetAtSnapshot("doc/b", snap.value(), nullptr);
  ASSERT_TRUE(at.ok()) << at.status().ToString();
  EXPECT_EQ(at->data, (Bytes{9, 8, 7, 6}));
  EXPECT_EQ(at->version, 1u);

  // CommitTxn: read-validated write on top of the snapshot.
  cloud::TxnRequest txn;
  txn.token = "txn/1";
  txn.snapshot = snap.value();
  txn.reads.push_back({"doc/a", 1});
  txn.writes.push_back({"doc/a", Bytes{4, 4, 4}, 1});
  auto outcome = transport.CommitTxn(txn);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_TRUE(outcome.committed);
  ASSERT_EQ(outcome.versions.size(), 1u);
  EXPECT_EQ(outcome.versions[0], 2u);

  // Txn token replay answered from the table, not re-applied.
  auto outcome2 = transport.CommitTxn(txn);
  EXPECT_TRUE(outcome2.committed);
  EXPECT_TRUE(outcome2.replayed);
  EXPECT_EQ(outcome2.commit_seq, outcome.commit_seq);
  EXPECT_EQ(cloud.LatestBlobVersion("doc/a").value_or(0), 2u);

  EXPECT_GE(server->stats().requests, 8u);
  EXPECT_EQ(server->stats().malformed, 0u);
}

TEST_F(RpcSocketTest, ResilientChannelSpeaksSocketTransport) {
  CloudInfrastructure cloud;
  auto server = StartServer(&cloud);
  SocketTransport transport("127.0.0.1", server->port());
  net::ChannelOptions channel_options;
  net::ResilientChannel channel(&transport, "cellA", channel_options);
  EXPECT_EQ(channel.cloud(), nullptr);  // Provider is "another process".

  std::string token = "cellA|doc|v1";
  auto v1 = channel.Put("cellA/doc", Bytes{1}, &token);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto v1_again = channel.Put("cellA/doc", Bytes{1}, &token);
  ASSERT_TRUE(v1_again.ok());
  EXPECT_EQ(v1.value(), v1_again.value());  // Exactly-once over the wire.

  auto data = channel.Get("cellA/doc");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), Bytes{1});
}

TEST_F(RpcSocketTest, TraceContextPropagatesAcrossTheFrameHeader) {
  CloudInfrastructure cloud;
  auto server = StartServer(&cloud);

  // Client-side: install a context, capture what the codec puts on the
  // wire for it (the client fills the header from CurrentContext()).
  obs::TraceContext ctx;
  ctx.trace_id = 0x1111;
  ctx.span_id = 0x2222;
  ctx.parent_id = 0x3333;
  SocketTransport transport("127.0.0.1", server->port());
  {
    obs::ScopedTraceContext scoped(ctx);
    auto put = transport.PutBlobBatch({{"t/doc", Bytes{1}}}, {"t/tok"});
    ASSERT_TRUE(put.status.ok());
  }
  // The server restored the caller's context inside Dispatch; the blob
  // landing proves the request crossed with the header intact (the header
  // round-trip test pins the trace fields byte-exactly; here we pin the
  // end-to-end path doesn't corrupt framing when trace ids are set).
  EXPECT_TRUE(cloud.BlobExists("t/doc"));
}

// ---------------------------------------------------------------------------
// Malformed input against a live server
// ---------------------------------------------------------------------------

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends `data`, then waits for the server to close the connection (recv
/// returning 0/EOF) — the clean-close contract for malformed frames.
bool SendThenExpectEof(int fd, const Bytes& data) {
  if (::send(fd, data.data(), data.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(data.size())) {
    return false;
  }
  uint8_t buf[64];
  for (;;) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r == 0) return true;   // Clean EOF.
    if (r < 0) return errno == ECONNRESET;  // Also a close, less polite.
  }
}

TEST_F(RpcSocketTest, MalformedFrameClosesConnectionCleanly) {
  CloudInfrastructure cloud;
  auto server = StartServer(&cloud);

  // Garbage magic.
  {
    int fd = ConnectTo(server->port());
    ASSERT_GE(fd, 0);
    Bytes garbage(kFrameHeaderBytes, 0x5a);
    EXPECT_TRUE(SendThenExpectEof(fd, garbage));
    ::close(fd);
  }
  // Version from the future.
  {
    int fd = ConnectTo(server->port());
    ASSERT_GE(fd, 0);
    FrameHeader h;
    h.version = 99;
    Bytes frame = EncodeFrameHeader(h);
    EXPECT_TRUE(SendThenExpectEof(fd, frame));
    ::close(fd);
  }
  // Well-formed header, undecodable payload.
  {
    int fd = ConnectTo(server->port());
    ASSERT_GE(fd, 0);
    FrameHeader h;
    h.op = RpcOp::kCommitTxn;
    h.payload_size = 4;
    Bytes frame = EncodeFrameHeader(h);
    Bytes junk = {0xff, 0xff, 0xff, 0xff};
    frame.insert(frame.end(), junk.begin(), junk.end());
    EXPECT_TRUE(SendThenExpectEof(fd, frame));
    ::close(fd);
  }

  // The server survived all three and still serves new connections.
  SocketTransport transport("127.0.0.1", server->port());
  auto put = transport.PutBlobBatch({{"ok/doc", Bytes{1}}}, {"ok/tok"});
  EXPECT_TRUE(put.status.ok()) << put.status.ToString();
  EXPECT_GE(server->stats().malformed, 3u);
  EXPECT_GE(server->stats().version_mismatch, 1u);
}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

TEST_F(RpcSocketTest, GracefulShutdownWithInFlightRequestsAcksOrAborts) {
  // Slow provider ops (wall-clock) guarantee requests are genuinely
  // in-flight inside the worker pool when Shutdown lands.
  CloudInfrastructure::Options cloud_options;
  cloud_options.op_latency_us = 20000;  // 20 ms per op.
  CloudInfrastructure cloud(cloud::AdversaryConfig::Honest(), cloud_options);
  RpcServer::Options server_options;
  server_options.worker_threads = 4;
  auto server = StartServer(&cloud, server_options);
  SocketTransport transport("127.0.0.1", server->port());

  constexpr int kCalls = 16;
  std::atomic<int> acked{0}, failed{0};
  std::vector<std::thread> callers;
  callers.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    callers.emplace_back([&, i] {
      auto put = transport.PutBlobBatch(
          {{"doc" + std::to_string(i), Bytes{static_cast<uint8_t>(i)}}},
          {"tok" + std::to_string(i)});
      if (put.status.ok()) {
        acked.fetch_add(1);
      } else {
        // Aborted-by-shutdown: transport-level kUnavailable, never a
        // fabricated provider answer.
        EXPECT_TRUE(put.status.IsTransient() ||
                    put.status.IsDeadlineExceeded())
            << put.status.ToString();
        failed.fetch_add(1);
      }
    });
  }
  // Let some land in the pool, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->Shutdown();
  for (auto& t : callers) t.join();

  EXPECT_EQ(acked.load() + failed.load(), kCalls);
  // Every ack is durable: the blobs the clients saw acked exist.
  size_t stored = cloud.ListBlobs("doc").size();
  EXPECT_GE(stored, static_cast<size_t>(acked.load()));
  // No worker leak / double shutdown issues.
  server->Shutdown();
  EXPECT_FALSE(server->running());
}

TEST_F(RpcSocketTest, ClientReconnectsAfterServerRestartWithoutDuplicates) {
  CloudInfrastructure cloud;
  auto server = StartServer(&cloud);
  const uint16_t port = server->port();
  RpcClientPool::Options pool_options;
  pool_options.connections = 1;
  SocketTransport transport("127.0.0.1", port, pool_options);

  auto put = transport.PutBlobBatch({{"r/doc", Bytes{1}}}, {"r/tok1"});
  ASSERT_TRUE(put.status.ok());
  ASSERT_EQ(put.versions[0], 1u);

  // Server restart (same provider state, same port — the cell outbox
  // scenario: provider process bounced, storage survived).
  server->Shutdown();
  auto lost = transport.PutBlobBatch({{"r/doc", Bytes{2}}}, {"r/tok2"});
  EXPECT_TRUE(lost.status.IsTransient() || lost.status.IsDeadlineExceeded())
      << lost.status.ToString();

  RpcServer::Options restart_options;
  restart_options.port = port;
  server = StartServer(&cloud, restart_options);
  ASSERT_EQ(server->port(), port);

  // The client lazily reconnects; the outbox-style retry re-sends under
  // the ORIGINAL token, so even if the pre-restart attempt had landed,
  // the token table dedupes: no duplicate versions.
  auto drained = transport.PutBlobBatch({{"r/doc", Bytes{2}}}, {"r/tok2"});
  ASSERT_TRUE(drained.status.ok()) << drained.status.ToString();
  EXPECT_EQ(drained.versions[0], 2u);
  auto replay = transport.PutBlobBatch({{"r/doc", Bytes{2}}}, {"r/tok2"});
  ASSERT_TRUE(replay.status.ok());
  EXPECT_EQ(replay.versions[0], 2u);  // Same token -> same version.
  EXPECT_EQ(cloud.LatestBlobVersion("r/doc").value_or(0), 2u);
}

TEST_F(RpcSocketTest, PoolExhaustionReturnsUnavailableNotDeadlock) {
  // One slow server worker + a tiny in-flight cap: the overflow calls must
  // fail fast with kUnavailable, not queue behind the slow ones.
  CloudInfrastructure::Options cloud_options;
  cloud_options.op_latency_us = 50000;  // 50 ms per op.
  CloudInfrastructure cloud(cloud::AdversaryConfig::Honest(), cloud_options);
  RpcServer::Options server_options;
  server_options.worker_threads = 1;
  auto server = StartServer(&cloud, server_options);

  RpcClientPool::Options pool_options;
  pool_options.connections = 1;
  pool_options.max_in_flight = 2;
  pool_options.request_timeout_ms = 10000;
  SocketTransport transport("127.0.0.1", server->port(), pool_options);

  constexpr int kCalls = 8;
  std::atomic<int> ok{0}, exhausted{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < kCalls; ++i) {
    callers.emplace_back([&, i] {
      auto put = transport.PutBlobBatch(
          {{"x/doc" + std::to_string(i), Bytes{1}}},
          {"x/tok" + std::to_string(i)});
      if (put.status.ok()) {
        ok.fetch_add(1);
      } else {
        ASSERT_EQ(put.status.code(), StatusCode::kUnavailable)
            << put.status.ToString();
        exhausted.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();  // Terminates = no deadlock.
  EXPECT_EQ(ok.load() + exhausted.load(), kCalls);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(exhausted.load(), 1);  // The cap actually bit.
}

TEST_F(RpcSocketTest, ClientDeadlineExceededOnSlowServer) {
  CloudInfrastructure::Options cloud_options;
  cloud_options.op_latency_us = 200000;  // 200 ms per op.
  CloudInfrastructure cloud(cloud::AdversaryConfig::Honest(), cloud_options);
  auto server = StartServer(&cloud);
  RpcClientPool::Options pool_options;
  pool_options.request_timeout_ms = 20;  // Far below the op latency.
  SocketTransport transport("127.0.0.1", server->port(), pool_options);
  auto put = transport.PutBlobBatch({{"d/doc", Bytes{1}}}, {"d/tok"});
  EXPECT_EQ(put.status.code(), StatusCode::kDeadlineExceeded)
      << put.status.ToString();
}

// ---------------------------------------------------------------------------
// Socket-path fleet leg (also runs under TSan: accept/dispatch/pool races)
// ---------------------------------------------------------------------------

TEST_F(RpcSocketTest, FleetChaosSweepOverRealSocketsLosesNoAckedWrite) {
  cloud::NetworkFaultConfig fault_config;
  fault_config.seed = 77;
  fault_config.drop_request_prob = 0.10;
  fault_config.drop_ack_prob = 0.10;
  fault_config.duplicate_prob = 0.05;
  cloud::NetworkFaultInjector injector(fault_config);
  CloudInfrastructure cloud;
  cloud.set_fault_injector(&injector);

  RpcServer::Options server_options;
  server_options.worker_threads = 4;
  auto server = StartServer(&cloud, server_options);
  RpcClientPool::Options pool_options;
  pool_options.connections = 4;
  SocketTransport transport("127.0.0.1", server->port(), pool_options);

  fleet::FleetOptions options;
  options.cells = 6;
  options.threads = 3;
  options.rounds_per_cell = 8;
  options.docs_per_cell = 4;
  options.put_batch = 2;
  options.gets_per_round = 2;
  options.payload_bytes = 64;
  options.send_prob = 0.0;
  options.resilient = true;
  options.transport = &transport;
  options.seed = 99;

  fleet::FleetRunner runner(&cloud, options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The fleet's own invariant checks (no acked-write loss, read-back
  // verification, convergence audit) ran against real sockets under
  // injected faults; a clean report is the assertion.
  EXPECT_EQ(report->cells_failed, 0u);
  EXPECT_TRUE(report->converged);
  EXPECT_GT(report->puts, 0u);
}

// ---------------------------------------------------------------------------
// WireHarness toggle
// ---------------------------------------------------------------------------

TEST(WireHarnessTest, InertWithoutEnvToggle) {
  if (WireHarness::SocketRequested()) {
    GTEST_SKIP() << "TC_TRANSPORT=socket is set; inertness test not "
                    "applicable in the wire leg";
  }
  CloudInfrastructure cloud;
  WireHarness harness(&cloud);
  EXPECT_EQ(harness.transport(), nullptr);
  EXPECT_EQ(harness.server(), nullptr);
}

}  // namespace
}  // namespace tc::rpc
