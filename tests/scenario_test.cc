// Cross-module scenario tests: the paper's composite use cases exercised
// end-to-end on the full platform (cells + cloud + sensors + compute).

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "tc/cell/cell.h"
#include "tc/compute/dp.h"
#include "tc/compute/kanon.h"
#include "tc/compute/secure_aggregation.h"
#include "tc/sensors/household.h"

namespace tc {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { clock_.Set(MakeTimestamp(2013, 1, 14)); }

  std::unique_ptr<cell::TrustedCell> MakeCell(const std::string& id,
                                              const std::string& owner) {
    cell::TrustedCell::Config config;
    config.cell_id = id;
    config.owner = owner;
    config.device_class = tee::DeviceClass::kHomeGateway;
    config.use_default_flash = false;
    config.flash.page_size = 2048;
    config.flash.pages_per_block = 16;
    config.flash.block_count = 512;
    auto cell =
        cell::TrustedCell::Create(config, &cloud_, &directory_, &clock_);
    TC_CHECK(cell.ok());
    return std::move(*cell);
  }

  SimulatedClock clock_;
  cloud::CloudInfrastructure cloud_;
  cell::CellDirectory directory_;
};

// "time series at required granularity are securely exchanged with other
// trusted cells in their neighborhood to achieve consumption peak load
// shaving" — N gateways aggregate their evening peak privately.
TEST_F(ScenarioTest, NeighborhoodPeakShaving) {
  const int kHomes = 12;
  std::vector<std::unique_ptr<cell::TrustedCell>> gateways;
  std::vector<int64_t> true_peak_wh(kHomes, 0);
  Timestamp day_start = clock_.Now();

  for (int h = 0; h < kHomes; ++h) {
    auto gw = MakeCell("home-" + std::to_string(h), "family-" +
                       std::to_string(h));
    sensors::HouseholdSimulator::Config config;
    config.seed = 100 + h;
    sensors::HouseholdSimulator house(config);
    sensors::DayTrace day = house.SimulateDay(14);
    // Ingest only the evening peak hours (18:00-21:00) at 10 s resolution
    // to keep the test fast.
    for (int s = 18 * 3600; s < 21 * 3600; s += 10) {
      ASSERT_TRUE(
          gw->IngestReading("power", day_start + s, day.watts[s]).ok());
    }
    auto wh = gw->ProvideAggregateValue("power", day_start + 18 * 3600,
                                        day_start + 21 * 3600);
    ASSERT_TRUE(wh.ok());
    true_peak_wh[h] = *wh;
    gateways.push_back(std::move(gw));
  }

  // Private aggregation: each gateway contributes its peak-hours sum via
  // additive masking; the aggregator learns only the neighborhood total.
  std::vector<int64_t> contributions = true_peak_wh;
  auto channels = compute::SecureAggregation::PairwiseChannels::Setup(
      kHomes, /*use_real_dh=*/false, 77);
  Rng rng(5);
  auto outcome = compute::SecureAggregation::RunAdditiveMasking(
      cloud_, contributions, channels, /*round=*/14, /*dropout_rate=*/0.0,
      rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->sum, std::accumulate(true_peak_wh.begin(),
                                          true_peak_wh.end(), int64_t{0}));
  EXPECT_TRUE(outcome->privacy_preserving);
}

// "Larger-scale sharing brings public health insights (e.g.,
// epidemiological study cross-analyzing diseases and alimentation)" —
// cells contribute microdata under the kAggregate right; the release is
// k-anonymized and counts are perturbed with differential privacy.
TEST_F(ScenarioTest, EpidemiologicalRelease) {
  const int kPatients = 80;
  Rng rng(31);
  std::vector<compute::MicroRecord> cohort;
  const char* diseases[] = {"diabetes", "asthma", "none"};
  for (int i = 0; i < kPatients; ++i) {
    auto patient = MakeCell("patient-" + std::to_string(i) + "-cell",
                            "patient-" + std::to_string(i));
    compute::MicroRecord record{
        static_cast<int>(rng.NextInt(20, 80)),
        "75" + std::to_string(rng.NextInt(100, 115)),
        diseases[rng.NextBelow(3)]};
    // The record is held as a document in the patient's own cell...
    ASSERT_TRUE(patient
                    ->StoreDocument("medical record", "medical " +
                                        record.sensitive,
                                    ToBytes(record.sensitive),
                                    cell::MakeOwnerPolicy(patient->owner()))
                    .ok());
    // ...and (under the kAggregate right) contributed to the study.
    cohort.push_back(record);
  }

  auto release = compute::KAnonymizer::Anonymize(cohort, 10);
  ASSERT_TRUE(release.ok());
  EXPECT_TRUE(compute::KAnonymizer::IsKAnonymous(release->records, 10));

  // DP-perturbed disease counts on top of the anonymized release.
  std::map<std::string, int> exact;
  for (const auto& r : release->records) ++exact[r.sensitive];
  compute::PrivacyBudget budget(1.0);
  Rng noise(7);
  for (const auto& [disease, count] : exact) {
    ASSERT_TRUE(budget.Consume(0.3).ok());
    auto noisy = compute::DifferentialPrivacy::LaplaceMechanism(
        count, /*sensitivity=*/1.0, /*epsilon=*/0.3, noise);
    ASSERT_TRUE(noisy.ok());
    EXPECT_NEAR(*noisy, count, 40.0);  // Within plausible Laplace spread.
  }
  // The fourth query exhausts the budget: the cell refuses further
  // releases to this recipient.
  EXPECT_TRUE(budget.Consume(0.3).IsResourceExhausted());
}

// Re-sharing chain: A -> B (with kShare) -> C; audit flows back to A.
TEST_F(ScenarioTest, ReShareChainWithAccountability) {
  auto alice = MakeCell("alice-cell", "alice");
  auto bob = MakeCell("bob-cell", "bob");
  auto carol = MakeCell("carol-cell", "carol");

  Bytes content = ToBytes("conference slides draft");
  auto doc = *alice->StoreDocument("slides", "slides talk", content,
                                   cell::MakeOwnerPolicy("alice"));

  // Policy for Bob: read + re-share, audited.
  policy::UsageRule bob_rule;
  bob_rule.id = "bob-read-share";
  bob_rule.subjects = {"bob"};
  bob_rule.rights = {policy::Right::kRead, policy::Right::kShare};
  bob_rule.obligations = {policy::ObligationType::kLogAccess};
  ASSERT_TRUE(alice
                  ->ShareDocument(doc, "bob-cell",
                                  policy::Policy{"p1", "alice", {bob_rule}})
                  .ok());
  ASSERT_EQ(*bob->ProcessInbox(), 1);
  EXPECT_EQ(*bob->ReadSharedDocument(doc, "bob"), content);

  // Bob re-shares to Carol (allowed by kShare).
  policy::UsageRule carol_rule;
  carol_rule.id = "carol-read";
  carol_rule.subjects = {"carol"};
  carol_rule.rights = {policy::Right::kRead};
  carol_rule.max_uses = 1;
  carol_rule.obligations = {policy::ObligationType::kLogAccess};
  ASSERT_TRUE(bob->ShareDocument(doc, "carol-cell",
                                 policy::Policy{"p2", "bob", {carol_rule}})
                  .ok());
  ASSERT_EQ(*carol->ProcessInbox(), 1);
  EXPECT_EQ(*carol->ReadSharedDocument(doc, "carol"), content);
  // Carol's single use is consumed.
  EXPECT_TRUE(carol->ReadSharedDocument(doc, "carol")
                  .status()
                  .IsPermissionDenied());

  // Both downstream cells push their audit logs to Alice.
  ASSERT_TRUE(bob->PushAuditLog("alice-cell").ok());
  ASSERT_TRUE(carol->PushAuditLog("alice-cell").ok());
  (void)alice->ProcessInbox();
  auto pushes = alice->TakeMessages("audit-log");
  ASSERT_EQ(pushes.size(), 2u);
  int entries_total = 0;
  for (const auto& push : pushes) {
    auto entries = alice->VerifyAuditPush(push);
    ASSERT_TRUE(entries.ok());
    entries_total += static_cast<int>(entries->size());
  }
  EXPECT_GE(entries_total, 4);  // Bob: read+share; Carol: read + denied.
}

// A recipient without the kShare right cannot re-share.
TEST_F(ScenarioTest, ReShareWithoutRightDenied) {
  auto alice = MakeCell("alice-cell", "alice");
  auto bob = MakeCell("bob-cell", "bob");
  auto carol = MakeCell("carol-cell", "carol");
  auto doc = *alice->StoreDocument("d", "k", ToBytes("x"),
                                   cell::MakeOwnerPolicy("alice"));
  policy::UsageRule read_only;
  read_only.id = "bob-read";
  read_only.subjects = {"bob"};
  read_only.rights = {policy::Right::kRead};
  ASSERT_TRUE(alice
                  ->ShareDocument(doc, "bob-cell",
                                  policy::Policy{"p", "alice", {read_only}})
                  .ok());
  ASSERT_EQ(*bob->ProcessInbox(), 1);
  EXPECT_TRUE(bob->ShareDocument(doc, "carol-cell",
                                 cell::MakeOwnerPolicy("bob"))
                  .IsPermissionDenied());
}

// The "internet cafe" scenario: a cell keeps working against a cloud that
// is partially unreliable (drops some messages), and sharing retries
// converge.
TEST_F(ScenarioTest, SharingSurvivesLossyInfrastructure) {
  auto alice = MakeCell("alice-cell", "alice");
  auto bob = MakeCell("bob-cell", "bob");
  auto doc = *alice->StoreDocument("d", "k", ToBytes("payload"),
                                   cell::MakeOwnerPolicy("alice"));
  cloud::AdversaryConfig lossy;
  lossy.drop_message_prob = 0.5;
  lossy.seed = 13;
  cloud_.set_adversary(lossy);

  policy::UsageRule rule;
  rule.id = "bob";
  rule.subjects = {"bob"};
  rule.rights = {policy::Right::kRead};
  policy::Policy p{"p", "alice", {rule}};
  // Application-level retry until the grant arrives (each attempt is a
  // fresh grant id, so replays are no issue).
  int accepted = 0;
  for (int attempt = 0; attempt < 20 && accepted == 0; ++attempt) {
    ASSERT_TRUE(alice->ShareDocument(doc, "bob-cell", p).ok());
    accepted = *bob->ProcessInbox();
  }
  ASSERT_EQ(accepted, 1);
  EXPECT_EQ(*bob->ReadSharedDocument(doc, "bob"), ToBytes("payload"));
}

}  // namespace
}  // namespace tc
