#include <gtest/gtest.h>

#include <algorithm>

#include "tc/sensors/gps.h"
#include "tc/sensors/household.h"
#include "tc/sensors/power_meter.h"

namespace tc::sensors {
namespace {

TEST(ApplianceTest, TracesHaveSignatureShape) {
  Rng rng(1);
  auto kettle = ActivationTrace(ApplianceType::kKettle, rng);
  ASSERT_FALSE(kettle.empty());
  EXPECT_GE(static_cast<int>(kettle.size()), 120);
  EXPECT_LE(static_cast<int>(kettle.size()), 200);
  for (int w : kettle) EXPECT_NEAR(w, 2000, 50);

  auto ev = ActivationTrace(ApplianceType::kEvCharger, rng, 1.0);
  EXPECT_GE(static_cast<int>(ev.size()), 4500);
  EXPECT_LE(static_cast<int>(ev.size()), 14400);
  EXPECT_NEAR(ev[ev.size() / 2], 3700, 100);
  // Taper at the end.
  EXPECT_LT(ev.back(), 200);
}

TEST(ApplianceTest, HeatPumpModulates) {
  Rng rng(2);
  auto cold = ActivationTrace(ApplianceType::kHeatPump, rng, 1.0);
  auto mild = ActivationTrace(ApplianceType::kHeatPump, rng, 0.1);
  double cold_mean = 0, mild_mean = 0;
  for (int w : cold) cold_mean += w;
  for (int w : mild) mild_mean += w;
  cold_mean /= cold.size();
  mild_mean /= mild.size();
  // Fixed-speed compressor: cold weather mostly lengthens the cycle and
  // adds a modest defrost overhead.
  EXPECT_GT(cold_mean, mild_mean + 100);
  EXPECT_GT(cold.size(), mild.size());
}

TEST(ApplianceTest, WashingMachineHasPhases) {
  Rng rng(3);
  auto wm = ActivationTrace(ApplianceType::kWashingMachine, rng);
  // Heating phase near 2100 W at the start.
  EXPECT_NEAR(wm[300], 2100, 80);
  // Tumble phase much lower at 60% in.
  EXPECT_LT(wm[wm.size() * 6 / 10], 500);
}

TEST(HouseholdTest, DayTraceIsDeterministicPerSeed) {
  HouseholdSimulator::Config config;
  config.seed = 99;
  HouseholdSimulator sim(config);
  DayTrace a = sim.SimulateDay(10);
  DayTrace b = sim.SimulateDay(10);
  EXPECT_EQ(a.watts, b.watts);
  EXPECT_EQ(a.events.size(), b.events.size());
  DayTrace c = sim.SimulateDay(11);
  EXPECT_NE(a.watts, c.watts);
}

TEST(HouseholdTest, TraceHasPlausibleShape) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  DayTrace day = sim.SimulateDay(30);
  ASSERT_EQ(day.watts.size(), 86400u);
  // Base load present at all times.
  int min_w = *std::min_element(day.watts.begin(), day.watts.end());
  EXPECT_GT(min_w, 30);
  // Realistic daily energy for a 4-person all-electric household with EV.
  EXPECT_GT(day.kwh, 5.0);
  EXPECT_LT(day.kwh, 80.0);
  EXPECT_FALSE(day.events.empty());
}

TEST(HouseholdTest, WinterUsesMoreHeatingThanSummer) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  // Average over some days to smooth schedule randomness.
  double winter = 0, summer = 0;
  for (int d = 10; d < 20; ++d) winter += sim.SimulateDay(d).kwh;   // January.
  for (int d = 190; d < 200; ++d) summer += sim.SimulateDay(d).kwh; // July.
  EXPECT_GT(winter, summer);
  EXPECT_LT(sim.OutsideTempC(15), sim.OutsideTempC(196));
}

TEST(HouseholdTest, DownsamplePreservesMeanEnergy) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  DayTrace day = sim.SimulateDay(5);
  auto down = day.Downsample(900);
  EXPECT_EQ(down.size(), 96u);
  double raw_mean = 0;
  for (int w : day.watts) raw_mean += w;
  raw_mean /= day.watts.size();
  double down_mean = 0;
  for (int w : down) down_mean += w;
  down_mean /= down.size();
  EXPECT_NEAR(down_mean, raw_mean, raw_mean * 0.01 + 1);
}

TEST(HouseholdTest, ButlerShiftsLoadOffPeakAndCutsBill) {
  HouseholdSimulator::Config base;
  base.seed = 7;
  HouseholdSimulator::Config smart = base;
  smart.smart_butler = true;
  HouseholdSimulator naive_sim(base), smart_sim(smart);
  Tariff tariff;
  double naive_bill = 0, smart_bill = 0;
  for (int d = 0; d < 30; ++d) {
    naive_bill += HouseholdSimulator::DailyBillEur(naive_sim.SimulateDay(d),
                                                   tariff);
    smart_bill += HouseholdSimulator::DailyBillEur(smart_sim.SimulateDay(d),
                                                   tariff);
  }
  EXPECT_LT(smart_bill, naive_bill);
  // The paper claims ~30%; we only require a material saving here, the
  // precise number is E3's output.
  EXPECT_GT((naive_bill - smart_bill) / naive_bill, 0.10);
}

TEST(HouseholdTest, ConservationFactorReducesConsumption) {
  HouseholdSimulator::Config base;
  base.seed = 21;
  HouseholdSimulator::Config eco = base;
  eco.conservation_factor = 0.8;
  HouseholdSimulator normal(base), frugal(eco);
  double kwh_normal = 0, kwh_eco = 0;
  for (int d = 0; d < 30; ++d) {
    kwh_normal += normal.SimulateDay(d).kwh;
    kwh_eco += frugal.SimulateDay(d).kwh;
  }
  EXPECT_LT(kwh_eco, kwh_normal);
}

TEST(PowerMeterTest, CertifiedAggregateVerifies) {
  PowerMeter meter("linky-35000001");
  CertifiedAggregate agg = meter.Certify(15521, 28.5);
  EXPECT_TRUE(PowerMeter::Verify(agg, meter.public_key()));
  // Forged kWh fails.
  CertifiedAggregate forged = agg;
  forged.kwh = 10.0;
  EXPECT_FALSE(PowerMeter::Verify(forged, meter.public_key()));
  // Another meter's key fails.
  PowerMeter other("linky-35000002");
  EXPECT_FALSE(PowerMeter::Verify(agg, other.public_key()));
}

TEST(PowerMeterTest, EmitDayStreamsEverySecond) {
  HouseholdSimulator sim(HouseholdSimulator::Config{});
  DayTrace day = sim.SimulateDay(3);
  PowerMeter meter("linky-1");
  int count = 0;
  Timestamp first = -1, last = -1;
  CertifiedAggregate agg =
      meter.EmitDay(day, 1000000, [&](Timestamp t, int watts) {
        if (first < 0) first = t;
        last = t;
        EXPECT_GE(watts, 0);
        ++count;
      });
  EXPECT_EQ(count, 86400);
  EXPECT_EQ(first, 1000000);
  EXPECT_EQ(last, 1000000 + 86399);
  EXPECT_DOUBLE_EQ(agg.kwh, day.kwh);
  EXPECT_TRUE(PowerMeter::Verify(agg, meter.public_key()));
}

TEST(GpsTest, WeekdayHasCommuteTrips) {
  GpsTracker tracker("car-1", GpsTracker::Config{});
  auto trips = tracker.SimulateDay(/*day_index=*/1, /*day_start=*/0);  // Tue.
  ASSERT_GE(trips.size(), 2u);
  for (const Trip& trip : trips) {
    EXPECT_GT(trip.km, 0.5);
    EXPECT_GT(trip.points.size(), 10u);
    EXPECT_GT(trip.cost_cents, 0);
    // 1 Hz fixes.
    EXPECT_EQ(trip.points.back().time - trip.points.front().time + 1,
              static_cast<Timestamp>(trip.points.size()));
  }
}

TEST(GpsTest, TariffZonesByDistanceFromCenter) {
  EXPECT_EQ(GpsTracker::TariffCentsPerKm(48857000, 2350000), 12);  // Centre.
  EXPECT_EQ(GpsTracker::TariffCentsPerKm(48900000, 2350000), 6);   // Ring.
  EXPECT_EQ(GpsTracker::TariffCentsPerKm(49500000, 2350000), 2);   // Rural.
}

TEST(GpsTest, PaydSummaryVerifiesAndMatchesTrips) {
  GpsTracker tracker("car-2", GpsTracker::Config{});
  auto trips = tracker.SimulateDay(2, 0);
  PaydSummary summary = tracker.Summarize(2, trips);
  EXPECT_TRUE(GpsTracker::Verify(summary, tracker.public_key()));
  double km = 0;
  for (const Trip& t : trips) km += t.km;
  EXPECT_DOUBLE_EQ(summary.total_km, km);
  // Tampered distance (to lower the insurance bill) fails verification.
  PaydSummary forged = summary;
  forged.total_km *= 0.5;
  EXPECT_FALSE(GpsTracker::Verify(forged, tracker.public_key()));
}

}  // namespace
}  // namespace tc::sensors
