#include <gtest/gtest.h>

#include <memory>

#include "tc/cell/cell.h"

namespace tc::cell {
namespace {

class SpaceProofTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_.Set(MakeTimestamp(2013, 5, 6));
    alice_ = MakeCell("alice-cell", "alice");
    bob_ = MakeCell("bob-cell", "bob");
  }

  std::unique_ptr<TrustedCell> MakeCell(const std::string& id,
                                        const std::string& owner) {
    TrustedCell::Config config;
    config.cell_id = id;
    config.owner = owner;
    config.device_class = tee::DeviceClass::kSmartPhone;
    auto cell = TrustedCell::Create(config, &cloud_, &directory_, &clock_);
    TC_CHECK(cell.ok());
    return std::move(*cell);
  }

  SimulatedClock clock_;
  cloud::CloudInfrastructure cloud_;
  CellDirectory directory_;
  std::unique_ptr<TrustedCell> alice_;
  std::unique_ptr<TrustedCell> bob_;
};

TEST_F(SpaceProofTest, ProofVerifiesForEveryOwnDocument) {
  std::vector<std::string> ids;
  for (int i = 0; i < 7; ++i) {
    ids.push_back(*alice_->StoreDocument("doc " + std::to_string(i), "tag",
                                         Bytes(64, static_cast<uint8_t>(i)),
                                         MakeOwnerPolicy("alice")));
  }
  for (const std::string& id : ids) {
    auto proof = alice_->ProveDocumentInSpace(id);
    ASSERT_TRUE(proof.ok()) << id;
    EXPECT_TRUE(TrustedCell::VerifySpaceProof(*proof, directory_)) << id;
  }
}

TEST_F(SpaceProofTest, ForgedProofsRejected) {
  auto d1 = *alice_->StoreDocument("a", "a", ToBytes("1"),
                                   MakeOwnerPolicy("alice"));
  auto d2 = *alice_->StoreDocument("b", "b", ToBytes("2"),
                                   MakeOwnerPolicy("alice"));
  auto proof = *alice_->ProveDocumentInSpace(d1);

  // Claiming a different doc id with d1's proof fails.
  auto renamed = proof;
  renamed.doc_id = d2;
  EXPECT_FALSE(TrustedCell::VerifySpaceProof(renamed, directory_));

  // Claiming a different version fails.
  auto reversioned = proof;
  reversioned.version = 99;
  EXPECT_FALSE(TrustedCell::VerifySpaceProof(reversioned, directory_));

  // A tampered root breaks the signature.
  auto bad_root = proof;
  bad_root.root[0] ^= 1;
  EXPECT_FALSE(TrustedCell::VerifySpaceProof(bad_root, directory_));

  // Bob cannot pass off Alice's proof as his own space.
  auto stolen = proof;
  stolen.cell_id = "bob-cell";
  EXPECT_FALSE(TrustedCell::VerifySpaceProof(stolen, directory_));

  // Unknown cell id.
  auto unknown = proof;
  unknown.cell_id = "nobody";
  EXPECT_FALSE(TrustedCell::VerifySpaceProof(unknown, directory_));
}

TEST_F(SpaceProofTest, SharedDocumentsAreNotProvable) {
  auto doc = *alice_->StoreDocument("a", "a", ToBytes("1"),
                                    MakeOwnerPolicy("alice"));
  policy::UsageRule rule;
  rule.id = "bob";
  rule.subjects = {"bob"};
  rule.rights = {policy::Right::kRead};
  ASSERT_TRUE(alice_->ShareDocument(doc, "bob-cell",
                                    policy::Policy{"p", "alice", {rule}})
                  .ok());
  ASSERT_EQ(*bob_->ProcessInbox(), 1);
  // The doc is in Bob's metadata but not in *his* space.
  EXPECT_TRUE(bob_->ProveDocumentInSpace(doc).status().IsNotFound());
}

TEST_F(SpaceProofTest, KeyRotationRevokesRecipients) {
  Bytes content = ToBytes("quarterly report");
  auto doc = *alice_->StoreDocument("report", "report", content,
                                    MakeOwnerPolicy("alice"));
  policy::UsageRule rule;
  rule.id = "bob";
  rule.subjects = {"bob"};
  rule.rights = {policy::Right::kRead};
  ASSERT_TRUE(alice_->ShareDocument(doc, "bob-cell",
                                    policy::Policy{"p", "alice", {rule}})
                  .ok());
  ASSERT_EQ(*bob_->ProcessInbox(), 1);
  EXPECT_EQ(*bob_->ReadSharedDocument(doc, "bob"), content);

  // Alice rotates the key; Bob's wrapped key no longer opens the current
  // payload.
  ASSERT_TRUE(alice_->RotateDocumentKey(doc).ok());
  EXPECT_FALSE(bob_->ReadSharedDocument(doc, "bob").ok());

  // Alice still reads it, at the bumped version.
  auto after = alice_->FetchDocument(doc);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, content);
  EXPECT_EQ(alice_->GetDocumentMeta(doc)->version, 2u);

  // Re-sharing after rotation works and uses the new key.
  ASSERT_TRUE(alice_->ShareDocument(doc, "bob-cell",
                                    policy::Policy{"p2", "alice", {rule}})
                  .ok());
  ASSERT_EQ(*bob_->ProcessInbox(), 1);
  EXPECT_EQ(*bob_->ReadSharedDocument(doc, "bob"), content);
}

TEST_F(SpaceProofTest, RotatedKeysDeriveOnOtherOwnerCells) {
  auto phone = MakeCell("alice-phone", "alice");
  Bytes content = ToBytes("rotated twice");
  auto doc = *alice_->StoreDocument("d", "k", content,
                                    MakeOwnerPolicy("alice"));
  ASSERT_TRUE(alice_->RotateDocumentKey(doc).ok());
  ASSERT_TRUE(alice_->RotateDocumentKey(doc).ok());
  ASSERT_TRUE(alice_->SyncPush().ok());
  ASSERT_TRUE(phone->SyncPull().ok());
  auto fetched = phone->FetchDocument(doc);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);
}

TEST_F(SpaceProofTest, RotationDeniedForForeignDocuments) {
  auto doc = *alice_->StoreDocument("d", "k", ToBytes("x"),
                                    MakeOwnerPolicy("alice"));
  policy::UsageRule rule;
  rule.id = "bob";
  rule.subjects = {"bob"};
  rule.rights = {policy::Right::kRead};
  ASSERT_TRUE(alice_->ShareDocument(doc, "bob-cell",
                                    policy::Policy{"p", "alice", {rule}})
                  .ok());
  ASSERT_EQ(*bob_->ProcessInbox(), 1);
  EXPECT_TRUE(bob_->RotateDocumentKey(doc).IsPermissionDenied());
}

}  // namespace
}  // namespace tc::cell
