#include <gtest/gtest.h>

#include <memory>

#include "tc/storage/flash_device.h"
#include "tc/storage/log_store.h"
#include "tc/storage/page_transform.h"
#include "tc/tee/tee.h"
#include "tc/testing/fault_injection.h"

namespace tc::storage {
namespace {

FlashGeometry SmallGeometry() {
  FlashGeometry geo;
  geo.page_size = 512;
  geo.pages_per_block = 8;
  geo.block_count = 32;
  return geo;
}

TEST(FlashDeviceTest, EraseProgramReadCycle) {
  FlashDevice dev(SmallGeometry());
  Bytes data(512, 0xab);
  EXPECT_TRUE(dev.ProgramPage(3, data).ok());
  EXPECT_EQ(*dev.ReadPage(3), data);
  EXPECT_TRUE(dev.IsPageProgrammed(3));
  EXPECT_FALSE(dev.IsPageProgrammed(4));
}

TEST(FlashDeviceTest, ErasedPageReadsAllOnes) {
  FlashDevice dev(SmallGeometry());
  EXPECT_EQ(*dev.ReadPage(0), Bytes(512, 0xff));
}

TEST(FlashDeviceTest, OverwriteForbiddenUntilErase) {
  FlashDevice dev(SmallGeometry());
  Bytes data(512, 1);
  ASSERT_TRUE(dev.ProgramPage(0, data).ok());
  EXPECT_EQ(dev.ProgramPage(0, data).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(dev.EraseBlock(0).ok());
  EXPECT_TRUE(dev.ProgramPage(0, data).ok());
  EXPECT_EQ(dev.BlockWear(0), 1u);
}

TEST(FlashDeviceTest, BoundsChecks) {
  FlashDevice dev(SmallGeometry());
  EXPECT_FALSE(dev.ReadPage(8 * 32).ok());
  EXPECT_FALSE(dev.ProgramPage(8 * 32, Bytes(512)).ok());
  EXPECT_FALSE(dev.EraseBlock(32).ok());
  EXPECT_FALSE(dev.ProgramPage(0, Bytes(100)).ok());  // Wrong size.
}

TEST(FlashDeviceTest, RejectedOpsDoNotAdvanceStatsOrTime) {
  FlashDevice dev(SmallGeometry());
  ASSERT_TRUE(dev.ProgramPage(0, Bytes(512, 1)).ok());
  FlashStats before = dev.stats();
  // Out-of-range, wrong size and forbidden overwrite: the chip refuses
  // them before doing any work.
  EXPECT_FALSE(dev.ReadPage(8 * 32).ok());
  EXPECT_FALSE(dev.ProgramPage(8 * 32, Bytes(512)).ok());
  EXPECT_FALSE(dev.ProgramPage(1, Bytes(100)).ok());
  EXPECT_FALSE(dev.ProgramPage(0, Bytes(512, 2)).ok());
  EXPECT_FALSE(dev.EraseBlock(32).ok());
  EXPECT_EQ(dev.stats().page_reads, before.page_reads);
  EXPECT_EQ(dev.stats().page_programs, before.page_programs);
  EXPECT_EQ(dev.stats().block_erases, before.block_erases);
  EXPECT_EQ(dev.stats().simulated_time_us, before.simulated_time_us);
  EXPECT_EQ(dev.BlockWear(0), 0u);
}

TEST(FaultyFlashDeviceTest, TornProgramLeavesPageObservablyPartial) {
  tc::testing::FaultPlan plan;
  plan.seed = 7;
  plan.power_loss_after_write_ops = 1;
  plan.torn = tc::testing::TornWriteMode::kPrefix;
  tc::testing::FaultyFlashDevice dev(SmallGeometry(), plan);
  Bytes data(512, 0xab);
  EXPECT_EQ(dev.ProgramPage(3, data).code(), StatusCode::kIOError);
  EXPECT_TRUE(dev.powered_off());
  EXPECT_EQ(dev.ReadPage(0).status().code(), StatusCode::kUnavailable);
  dev.PowerOn();
  // The page is neither untouched (all 0xFF) nor fully written: a real
  // torn write, a prefix of the data followed by erased bytes.
  ASSERT_TRUE(dev.IsPageProgrammed(3));
  Bytes on_flash = *dev.ReadPage(3);
  EXPECT_NE(on_flash, data);
  EXPECT_NE(on_flash, Bytes(512, 0xff));
  EXPECT_EQ(on_flash[0], 0xab);
  EXPECT_EQ(on_flash[511], 0xff);
  // The interrupted program still spent its time.
  EXPECT_EQ(dev.stats().page_programs, 1u);
}

TEST(FaultyFlashDeviceTest, InvalidOpsDoNotConsumeScheduledFaults) {
  tc::testing::FaultPlan plan;
  plan.power_loss_after_write_ops = 1;
  tc::testing::FaultyFlashDevice dev(SmallGeometry(), plan);
  // Invalid operations are rejected by validation and must not advance
  // the write-op counter, or crash-point numbering would drift.
  EXPECT_FALSE(dev.ProgramPage(8 * 32, Bytes(512)).ok());
  EXPECT_FALSE(dev.ProgramPage(0, Bytes(3)).ok());
  EXPECT_EQ(dev.write_ops_seen(), 0u);
  EXPECT_FALSE(dev.powered_off());
  EXPECT_EQ(dev.ProgramPage(0, Bytes(512, 1)).code(), StatusCode::kIOError);
  EXPECT_TRUE(dev.powered_off());
}

TEST(FlashDeviceTest, StatsAccumulate) {
  FlashDevice dev(SmallGeometry());
  (void)dev.ProgramPage(0, Bytes(512, 0));
  (void)dev.ReadPage(0);
  (void)dev.EraseBlock(0);
  EXPECT_EQ(dev.stats().page_programs, 1u);
  EXPECT_EQ(dev.stats().page_reads, 1u);
  EXPECT_EQ(dev.stats().block_erases, 1u);
  EXPECT_GT(dev.stats().simulated_time_us, 0u);
}

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<FlashDevice>(SmallGeometry());
    auto store = LogStore::Open(device_.get(), &plain_, LogStoreOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  void Reopen() {
    store_.reset();
    auto store = LogStore::Open(device_.get(), &plain_, LogStoreOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  std::unique_ptr<FlashDevice> device_;
  PlainPageTransform plain_;
  std::unique_ptr<LogStore> store_;
};

TEST_F(LogStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("alpha", ToBytes("1")).ok());
  ASSERT_TRUE(store_->Put("beta", ToBytes("2")).ok());
  EXPECT_EQ(*store_->Get("alpha"), ToBytes("1"));
  EXPECT_EQ(*store_->Get("beta"), ToBytes("2"));
  EXPECT_TRUE(store_->Get("gamma").status().IsNotFound());
}

TEST_F(LogStoreTest, OverwriteReturnsLatest) {
  ASSERT_TRUE(store_->Put("k", ToBytes("v1")).ok());
  ASSERT_TRUE(store_->Put("k", ToBytes("v2")).ok());
  EXPECT_EQ(*store_->Get("k"), ToBytes("v2"));
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(store_->Put("k", ToBytes("v3")).ok());
  EXPECT_EQ(*store_->Get("k"), ToBytes("v3"));
}

TEST_F(LogStoreTest, DeleteHidesKey) {
  ASSERT_TRUE(store_->Put("k", ToBytes("v")).ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Get("k").status().IsNotFound());
}

TEST_F(LogStoreTest, RecoveryRestoresState) {
  ASSERT_TRUE(store_->Put("persist-1", ToBytes("a")).ok());
  ASSERT_TRUE(store_->Put("persist-2", ToBytes("b")).ok());
  ASSERT_TRUE(store_->Put("persist-1", ToBytes("a2")).ok());
  ASSERT_TRUE(store_->Delete("persist-2").ok());
  ASSERT_TRUE(store_->Flush().ok());
  Reopen();
  EXPECT_EQ(*store_->Get("persist-1"), ToBytes("a2"));
  EXPECT_TRUE(store_->Get("persist-2").status().IsNotFound());
  EXPECT_EQ(*store_->CountLive(), 1u);
}

TEST_F(LogStoreTest, UnflushedWritesAreLostOnReopenFlushedSurvive) {
  ASSERT_TRUE(store_->Put("durable", ToBytes("yes")).ok());
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(store_->Put("volatile", ToBytes("no")).ok());
  Reopen();  // Simulated power loss without flush.
  EXPECT_EQ(*store_->Get("durable"), ToBytes("yes"));
  EXPECT_TRUE(store_->Get("volatile").status().IsNotFound());
}

TEST_F(LogStoreTest, ScanAllSeesLatestLiveVersions) {
  ASSERT_TRUE(store_->Put("a", ToBytes("1")).ok());
  ASSERT_TRUE(store_->Put("b", ToBytes("2")).ok());
  ASSERT_TRUE(store_->Put("a", ToBytes("3")).ok());
  ASSERT_TRUE(store_->Delete("b").ok());
  ASSERT_TRUE(store_->Put("c", ToBytes("4")).ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(store_
                  ->ScanAll([&](const std::string& k, const Bytes& v) {
                    seen[k] = ToString(v);
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["a"], "3");
  EXPECT_EQ(seen["c"], "4");
}

TEST_F(LogStoreTest, GcReclaimsSpaceUnderChurn) {
  // Keep overwriting a small working set until well past device capacity;
  // without GC this would exhaust the 32-block device.
  Bytes value(100, 0x42);
  for (int round = 0; round < 150; ++round) {
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(store_->Put("key-" + std::to_string(k), value).ok())
          << "round " << round << " key " << k;
    }
  }
  EXPECT_GT(store_->stats().gc_runs, 0u);
  EXPECT_EQ(*store_->CountLive(), 20u);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(*store_->Get("key-" + std::to_string(k)), value);
  }
  EXPECT_GT(store_->WriteAmplification(), 1.0);
}

TEST_F(LogStoreTest, CompactReclaimsTombstones) {
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(k), Bytes(50, 1)).ok());
  }
  for (int k = 0; k < 40; ++k) {
    ASSERT_TRUE(store_->Delete("k" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(store_->CompactAll().ok());
  EXPECT_EQ(*store_->CountLive(), 10u);
  Reopen();
  EXPECT_EQ(*store_->CountLive(), 10u);
  for (int k = 40; k < 50; ++k) {
    EXPECT_TRUE(store_->Get("k" + std::to_string(k)).ok());
  }
  EXPECT_TRUE(store_->Get("k0").status().IsNotFound());
}

TEST_F(LogStoreTest, RecordTooLargeRejected) {
  Bytes huge(1000, 1);  // Page payload is 512.
  EXPECT_EQ(store_->Put("big", huge).code(), StatusCode::kInvalidArgument);
}

TEST_F(LogStoreTest, EmptyKeyRejected) {
  EXPECT_FALSE(store_->Put("", ToBytes("x")).ok());
  EXPECT_FALSE(store_->Delete("").ok());
}

TEST(LogStoreRamBudgetTest, TinyBudgetFallsBackToScans) {
  FlashDevice device(SmallGeometry());
  PlainPageTransform plain;
  LogStoreOptions options;
  options.ram_budget_bytes = 700;  // Fits ~10 index entries.
  auto store = LogStore::Open(&device, &plain, options);
  ASSERT_TRUE(store.ok());
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(
        (*store)->Put("key-" + std::to_string(k), ToBytes("v")).ok());
  }
  EXPECT_FALSE((*store)->index_complete());
  EXPECT_GT((*store)->stats().index_insertions_dropped, 0u);
  // Every key still readable (correctness survives the RAM cliff).
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(*(*store)->Get("key-" + std::to_string(k)), ToBytes("v"))
        << k;
  }
  EXPECT_GT((*store)->stats().full_scans, 0u);
  EXPECT_EQ(*(*store)->CountLive(), 50u);
}

TEST(EncryptedStoreTest, FlashImageIsCiphertextAndTamperEvident) {
  tee::TrustedExecutionEnvironment tee("store-owner",
                                       tee::DeviceClass::kHomeGateway);
  ASSERT_TRUE(tee.keystore().GenerateKey("storage-root").ok());
  FlashDevice device(SmallGeometry());
  EncryptedPageTransform transform(&tee, "storage-root");
  auto store = LogStore::Open(&device, &transform, LogStoreOptions{});
  ASSERT_TRUE(store.ok());

  Bytes secret = ToBytes("1Hz power trace reveals the kettle");
  ASSERT_TRUE((*store)->Put("reading", secret).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  // Raw flash never contains the plaintext.
  bool plaintext_on_flash = false;
  for (size_t page = 0; page < device.geometry().total_pages(); ++page) {
    if (!device.IsPageProgrammed(page)) continue;
    Bytes raw = *device.ReadPage(page);
    std::string raw_str(raw.begin(), raw.end());
    if (raw_str.find("kettle") != std::string::npos) plaintext_on_flash = true;
  }
  EXPECT_FALSE(plaintext_on_flash);
  EXPECT_EQ(*(*store)->Get("reading"), secret);

  // Recovery through the same TEE key works.
  store->reset();
  auto reopened = LogStore::Open(&device, &transform, LogStoreOptions{});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("reading"), secret);
}

TEST(EncryptedStoreTest, WrongKeyCannotOpen) {
  tee::TrustedExecutionEnvironment owner("owner-dev",
                                         tee::DeviceClass::kHomeGateway);
  tee::TrustedExecutionEnvironment thief("thief-dev",
                                         tee::DeviceClass::kHomeGateway);
  ASSERT_TRUE(owner.keystore().GenerateKey("root").ok());
  ASSERT_TRUE(thief.keystore().GenerateKey("root").ok());

  FlashDevice device(SmallGeometry());
  {
    EncryptedPageTransform transform(&owner, "root");
    auto store = LogStore::Open(&device, &transform, LogStoreOptions{});
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", ToBytes("v")).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // The thief steals the flash chip but has a different TEE key.
  EncryptedPageTransform thief_transform(&thief, "root");
  auto stolen = LogStore::Open(&device, &thief_transform, LogStoreOptions{});
  EXPECT_FALSE(stolen.ok());
}

TEST(EncryptedStoreTest, MismatchedKeyFailsEvenWithTornTolerance) {
  tee::TrustedExecutionEnvironment owner("owner-dev",
                                         tee::DeviceClass::kHomeGateway);
  tee::TrustedExecutionEnvironment thief("thief-dev",
                                         tee::DeviceClass::kHomeGateway);
  ASSERT_TRUE(owner.keystore().GenerateKey("root").ok());
  ASSERT_TRUE(thief.keystore().GenerateKey("root").ok());

  FlashDevice device(SmallGeometry());
  {
    EncryptedPageTransform transform(&owner, "root");
    auto store = LogStore::Open(&device, &transform, LogStoreOptions{});
    ASSERT_TRUE(store.ok());
    // Enough data that the image spans well past any torn-page allowance.
    for (int k = 0; k < 80; ++k) {
      ASSERT_TRUE(
          (*store)->Put("k" + std::to_string(k), Bytes(100, 0x5a)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Torn-page tolerance must not let a wrong-key open masquerade as an
  // empty-but-healthy store: every page is undecodable, which is data
  // loss, not crash residue.
  EncryptedPageTransform thief_transform(&thief, "root");
  LogStoreOptions tolerant;
  tolerant.max_recovery_skips = SmallGeometry().pages_per_block;
  auto stolen = LogStore::Open(&device, &thief_transform, tolerant);
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.status().code(), StatusCode::kDataLoss);
}

class MidGcCrashTest : public ::testing::Test {
 protected:
  // Small device: ~5 pages of live data per round over 12 blocks, so the
  // churn forces garbage collection within a few rounds.
  static FlashGeometry GcGeometry() {
    FlashGeometry geo;
    geo.page_size = 512;
    geo.pages_per_block = 4;
    geo.block_count = 12;
    return geo;
  }

  // Churns overlapping keys until GC erases blocks, with a power loss
  // scheduled at write-op `crash_at` (0 = none). Returns the device.
  std::unique_ptr<tc::testing::FaultyFlashDevice> RunWorkload(
      uint64_t crash_at, bool* crashed) {
    tc::testing::FaultPlan plan;
    plan.seed = 5;
    plan.power_loss_after_write_ops = crash_at;
    plan.torn = tc::testing::TornWriteMode::kPrefix;
    auto dev = std::make_unique<tc::testing::FaultyFlashDevice>(
        GcGeometry(), plan);
    auto store = LogStore::Open(dev.get(), &plain_, LogStoreOptions{});
    if (!store.ok()) {
      *crashed = true;
      return dev;
    }
    *crashed = false;
    Bytes value(100, 0x42);
    for (int round = 0; round < 40 && !*crashed; ++round) {
      for (int k = 0; k < 20; ++k) {
        Status s = (*store)->Put("key-" + std::to_string(k), value);
        if (!s.ok()) {
          *crashed = true;
          break;
        }
      }
    }
    if (!*crashed) EXPECT_TRUE((*store)->Flush().ok());
    return dev;
  }

  PlainPageTransform plain_;
};

TEST_F(MidGcCrashTest, ReopenAfterCrashDuringGcErase) {
  // Find where the GC erases land, then aim a power loss exactly at the
  // first one, and at the flush-out program just before it.
  bool crashed = false;
  auto probe = RunWorkload(0, &crashed);
  ASSERT_FALSE(crashed);
  ASSERT_FALSE(probe->erase_op_ordinals().empty());
  uint64_t first_erase = probe->erase_op_ordinals().front();

  for (uint64_t crash_at : {first_erase, first_erase - 1}) {
    auto dev = RunWorkload(crash_at, &crashed);
    ASSERT_TRUE(crashed) << "power loss at op " << crash_at;
    dev->PowerOn();
    dev->SetPlan(tc::testing::FaultPlan{});
    LogStoreOptions tolerant;
    tolerant.max_recovery_skips = GcGeometry().pages_per_block;
    auto reopened = LogStore::Open(dev.get(), &plain_, tolerant);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_LE((*reopened)->stats().recovery_pages_skipped, 1u);
    // Acknowledged state: every key was flushed (page auto-flush + GC
    // relocation) many rounds before the crash; all 20 must be present
    // with the (only ever written) value.
    Bytes value(100, 0x42);
    for (int k = 0; k < 20; ++k) {
      auto got = (*reopened)->Get("key-" + std::to_string(k));
      ASSERT_TRUE(got.ok()) << "key-" << k << " after crash at " << crash_at;
      EXPECT_EQ(*got, value);
    }
    // The store stays writable after the interrupted GC.
    ASSERT_TRUE((*reopened)->Put("after-crash", ToBytes("ok")).ok());
    ASSERT_TRUE((*reopened)->Flush().ok());
    EXPECT_EQ(*(*reopened)->Get("after-crash"), ToBytes("ok"));
  }
}

TEST(LogStoreFaultTest, TransientProgramFailureIsRetryable) {
  tc::testing::FaultPlan plan;
  plan.seed = 9;
  plan.failing_write_ops = {1};  // First program fails, device stays up.
  plan.torn = tc::testing::TornWriteMode::kPrefix;
  tc::testing::FaultyFlashDevice dev(SmallGeometry(), plan);
  PlainPageTransform plain;
  auto store = LogStore::Open(&dev, &plain, LogStoreOptions{});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes("v")).ok());
  EXPECT_EQ((*store)->Flush().code(), StatusCode::kIOError);
  // The records stayed buffered; the retry skips the torn page and lands
  // on the next one.
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->stats().pages_abandoned, 1u);
  EXPECT_EQ(*(*store)->Get("k"), ToBytes("v"));
  // Recovery tolerates the abandoned torn page and sees the data.
  store->reset();
  LogStoreOptions tolerant;
  tolerant.max_recovery_skips = 2;
  auto reopened = LogStore::Open(&dev, &plain, tolerant);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(*(*reopened)->Get("k"), ToBytes("v"));
  EXPECT_LE((*reopened)->stats().recovery_pages_skipped, 1u);
}

TEST(LogStoreFaultTest, StuckErasedFlashDetectedByParanoidVerify) {
  tc::testing::FaultPlan plan;
  for (size_t b = 0; b < SmallGeometry().block_count; ++b) {
    plan.stuck_erased_blocks.insert(b);
  }
  // Without read-back verification the lost program goes unnoticed until
  // the data silently fails to recover...
  {
    tc::testing::FaultyFlashDevice dev(SmallGeometry(), plan);
    PlainPageTransform plain;
    auto store = LogStore::Open(&dev, &plain, LogStoreOptions{});
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", ToBytes("v")).ok());
    EXPECT_TRUE((*store)->Flush().ok());  // Silent loss.
    store->reset();
    auto reopened = LogStore::Open(&dev, &plain, LogStoreOptions{});
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE((*reopened)->Get("k").status().IsNotFound());
  }
  // ...with it, the store surfaces the failure at write time.
  {
    tc::testing::FaultyFlashDevice dev(SmallGeometry(), plan);
    PlainPageTransform plain;
    LogStoreOptions paranoid;
    paranoid.paranoid_program_verify = true;
    auto store = LogStore::Open(&dev, &plain, paranoid);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", ToBytes("v")).ok());
    EXPECT_EQ((*store)->Flush().code(), StatusCode::kIOError);
  }
}

}  // namespace
}  // namespace tc::storage
