#include <gtest/gtest.h>

#include "tc/tee/attestation.h"
#include "tc/tee/device_profile.h"
#include "tc/tee/tee.h"

namespace tc::tee {
namespace {

using TEE = TrustedExecutionEnvironment;

TEST(DeviceProfileTest, ClassesAreOrderedByCapability) {
  const DeviceProfile& token = DeviceProfile::Get(DeviceClass::kSecureToken);
  const DeviceProfile& phone = DeviceProfile::Get(DeviceClass::kSmartPhone);
  const DeviceProfile& gateway = DeviceProfile::Get(DeviceClass::kHomeGateway);
  EXPECT_LT(token.ram_budget_bytes, phone.ram_budget_bytes);
  EXPECT_LT(phone.ram_budget_bytes, gateway.ram_budget_bytes);
  EXPECT_GT(token.cpu_slowdown, phone.cpu_slowdown);
  EXPECT_GT(phone.cpu_slowdown, gateway.cpu_slowdown);
}

TEST(KeyStoreTest, GenerateAndUseKeys) {
  TEE tee("device-1", DeviceClass::kHomeGateway);
  EXPECT_TRUE(tee.keystore().GenerateKey("vault").ok());
  EXPECT_TRUE(tee.keystore().HasKey("vault"));
  EXPECT_TRUE(tee.keystore().GenerateKey("vault").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(tee.keystore().DestroyKey("vault").ok());
  EXPECT_FALSE(tee.keystore().HasKey("vault"));
  EXPECT_TRUE(tee.keystore().DestroyKey("vault").IsNotFound());
}

TEST(KeyStoreTest, DeriveChildKeyIsDeterministic) {
  TEE tee1("device-2", DeviceClass::kSmartPhone);
  TEE tee2("device-2", DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee1.keystore().GenerateKey("master").ok());
  ASSERT_TRUE(tee2.keystore().GenerateKey("master").ok());
  ASSERT_TRUE(
      tee1.keystore().DeriveChildKey("master", "child", "doc-17").ok());
  ASSERT_TRUE(
      tee2.keystore().DeriveChildKey("master", "child", "doc-17").ok());
  // Same device id => same DRBG => same master => same child: sealing on
  // one TEE opens on the other.
  Bytes sealed = *tee1.Seal("child", {}, ToBytes("hello"));
  EXPECT_EQ(*tee2.Open("child", {}, sealed), ToBytes("hello"));
}

TEST(TeeTest, SealOpenRoundTripWithAad) {
  TEE tee("device-3", DeviceClass::kSecureToken);
  ASSERT_TRUE(tee.keystore().GenerateKey("k").ok());
  Bytes aad = ToBytes("doc:1;v:2");
  Bytes sealed = *tee.Seal("k", aad, ToBytes("secret reading"));
  EXPECT_EQ(*tee.Open("k", aad, sealed), ToBytes("secret reading"));
  EXPECT_TRUE(tee.Open("k", ToBytes("doc:1;v:3"), sealed)
                  .status()
                  .IsIntegrityViolation());
  sealed[20] ^= 1;
  EXPECT_FALSE(tee.Open("k", aad, sealed).ok());
}

TEST(TeeTest, SealWithMissingKeyFails) {
  TEE tee("device-4", DeviceClass::kSecureToken);
  EXPECT_TRUE(tee.Seal("nope", {}, ToBytes("x")).status().IsNotFound());
}

TEST(TeeTest, MacAndCheck) {
  TEE tee("device-5", DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("mac-key").ok());
  Bytes tag = *tee.Mac("mac-key", ToBytes("audit entry"));
  EXPECT_TRUE(tee.CheckMac("mac-key", ToBytes("audit entry"), tag).ok());
  EXPECT_TRUE(tee.CheckMac("mac-key", ToBytes("tampered"), tag)
                  .IsIntegrityViolation());
}

TEST(TeeTest, MonotonicCounters) {
  TEE tee("device-6", DeviceClass::kHomeGateway);
  EXPECT_EQ(tee.CounterValue("sync"), 0u);
  EXPECT_EQ(tee.IncrementCounter("sync"), 1u);
  EXPECT_EQ(tee.IncrementCounter("sync"), 2u);
  EXPECT_EQ(tee.IncrementCounter("other"), 1u);
  EXPECT_EQ(tee.CounterValue("sync"), 2u);
}

TEST(TeeTest, SignaturesVerifyAcrossCells) {
  TEE alice("alice-home", DeviceClass::kHomeGateway);
  TEE bob("bob-phone", DeviceClass::kSmartPhone);
  Bytes msg = ToBytes("share grant for doc 7");
  auto sig = alice.Sign(msg);
  EXPECT_TRUE(TEE::VerifySignature(alice.signing_public_key(), msg, sig));
  EXPECT_FALSE(TEE::VerifySignature(bob.signing_public_key(), msg, sig));
}

TEST(TeeTest, KeyWrappingBetweenCells) {
  TEE alice("alice-g", DeviceClass::kHomeGateway);
  TEE bob("bob-p", DeviceClass::kSmartPhone);
  ASSERT_TRUE(alice.keystore().GenerateKey("doc-key").ok());
  Bytes context = ToBytes("share:doc-9;policy:abcd");

  Bytes envelope =
      *alice.WrapKeyFor(bob.dh_public_key(), "doc-key", context);
  ASSERT_TRUE(bob.UnwrapKeyFrom(alice.dh_public_key(), envelope, context,
                                "doc-key-from-alice")
                  .ok());

  // Bob can now open what Alice sealed under that key.
  Bytes sealed = *alice.Seal("doc-key", {}, ToBytes("the document"));
  EXPECT_EQ(*bob.Open("doc-key-from-alice", {}, sealed),
            ToBytes("the document"));
}

TEST(TeeTest, KeyWrapRejectsWrongContextOrEavesdropper) {
  TEE alice("alice-g2", DeviceClass::kHomeGateway);
  TEE bob("bob-p2", DeviceClass::kSmartPhone);
  TEE eve("eve-x", DeviceClass::kSmartPhone);
  ASSERT_TRUE(alice.keystore().GenerateKey("doc-key").ok());
  Bytes context = ToBytes("ctx");
  Bytes envelope = *alice.WrapKeyFor(bob.dh_public_key(), "doc-key", context);

  EXPECT_FALSE(bob.UnwrapKeyFrom(alice.dh_public_key(), envelope,
                                 ToBytes("other-ctx"), "k1")
                   .ok());
  // Eve intercepts the envelope but has a different DH secret.
  EXPECT_FALSE(
      eve.UnwrapKeyFrom(alice.dh_public_key(), envelope, context, "k2").ok());
}

TEST(AttestationTest, QuoteVerifiesWithEndorsement) {
  Manufacturer maker("acme-silicon");
  TEE tee("meter-123", DeviceClass::kSensorNode);
  tee.InstallEndorsement(maker.Endorse("meter-123", tee.signing_public_key()));
  tee.IncrementCounter("boot");

  Bytes nonce = ToBytes("challenger-nonce-1");
  Quote quote = tee.GenerateQuote(nonce, "fw=1.2.0;state=sealed");
  EXPECT_TRUE(TEE::VerifyQuote(quote, tee.endorsement(), maker));
}

TEST(AttestationTest, ForgedQuoteRejected) {
  Manufacturer maker("acme-silicon");
  TEE genuine("meter-1", DeviceClass::kSensorNode);
  TEE impostor("meter-fake", DeviceClass::kSensorNode);
  genuine.InstallEndorsement(
      maker.Endorse("meter-1", genuine.signing_public_key()));

  // Impostor signs a quote claiming to be meter-1.
  Quote quote = impostor.GenerateQuote(ToBytes("n"), "fw=1.2.0");
  quote.device_id = "meter-1";
  quote.signature = impostor.Sign(quote.SignedPayload());
  EXPECT_FALSE(TEE::VerifyQuote(quote, genuine.endorsement(), maker));
}

TEST(AttestationTest, TamperedClaimsRejected) {
  Manufacturer maker("acme-silicon");
  TEE tee("meter-2", DeviceClass::kSensorNode);
  tee.InstallEndorsement(maker.Endorse("meter-2", tee.signing_public_key()));
  Quote quote = tee.GenerateQuote(ToBytes("n"), "fw=1.2.0");
  quote.claims = "fw=evil";
  EXPECT_FALSE(TEE::VerifyQuote(quote, tee.endorsement(), maker));
}

TEST(AttestationTest, EndorsementFromOtherManufacturerRejected) {
  Manufacturer maker("acme-silicon");
  Manufacturer rival("other-fab");
  TEE tee("meter-3", DeviceClass::kSensorNode);
  Endorsement endorsement =
      rival.Endorse("meter-3", tee.signing_public_key());
  tee.InstallEndorsement(endorsement);
  Quote quote = tee.GenerateQuote(ToBytes("n"), "fw");
  EXPECT_FALSE(TEE::VerifyQuote(quote, tee.endorsement(), maker));
  EXPECT_TRUE(TEE::VerifyQuote(quote, tee.endorsement(), rival));
}

TEST(TeeTest, PhysicalBreachExtractsKeysAndMarksDevice) {
  TEE tee("victim", DeviceClass::kSmartPhone);
  ASSERT_TRUE(tee.keystore().GenerateKey("a").ok());
  ASSERT_TRUE(tee.keystore().GenerateKey("b").ok());
  EXPECT_FALSE(tee.keystore().breached());
  auto loot = tee.keystore().ExtractAllForPhysicalBreach();
  EXPECT_EQ(loot.size(), 2u);
  EXPECT_TRUE(tee.keystore().breached());
  // The loot actually decrypts data sealed by the victim (that is the
  // point of the E8 blast-radius experiment).
  EXPECT_FALSE(loot[0].second.empty());
}

}  // namespace
}  // namespace tc::tee
