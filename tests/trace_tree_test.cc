// Causal trace propagation, end to end: one CellFleet::PutBatch must leave
// behind a single connected span tree that crosses the fleet, cell,
// storage and cloud layers — across the worker-pool thread hop — and the
// Chrome trace_event export of that tree must carry the same structure.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tc/cloud/infrastructure.h"
#include "tc/fleet/cell_fleet.h"
#include "tc/obs/exporter.h"
#include "tc/obs/trace.h"

namespace tc {
namespace {

// ------------------------------------------------- context unit semantics

TEST(TraceContextTest, PlainSpanMintsATraceAndNestedSpansJoinIt) {
  obs::TraceRing::Global().Clear();
  uint64_t outer_trace = 0, outer_span = 0;
  uint64_t inner_trace = 0, inner_parent = 0;
  {
    obs::TraceSpan outer("test", "outer");
    outer_trace = outer.context().trace_id;
    outer_span = outer.context().span_id;
    EXPECT_NE(outer_trace, 0u);
    EXPECT_EQ(outer.context().parent_id, 0u);
    {
      obs::TraceSpan inner("test", "inner");
      inner_trace = inner.context().trace_id;
      inner_parent = inner.context().parent_id;
    }
  }
  // Nested span joined the outer trace instead of minting its own.
  EXPECT_EQ(inner_trace, outer_trace);
  EXPECT_EQ(inner_parent, outer_span);
  // After both spans closed, the thread is un-traced again.
  EXPECT_FALSE(obs::CurrentContext().active());
}

TEST(TraceContextTest, ChildOnlySpansAreInertWithoutAContext) {
  obs::TraceRing::Global().Clear();
  {
    // Hot-path guard: a child-only span outside any operation emits
    // nothing and installs no context.
    obs::TraceSpan span(obs::kChildOnly, "storage", "put");
    EXPECT_FALSE(obs::CurrentContext().active());
  }
  EXPECT_EQ(obs::TraceRing::Global().Snapshot().size(), 0u);
  {
    obs::TraceSpan root("test", "op");
    obs::TraceSpan child(obs::kChildOnly, "storage", "put");
    EXPECT_EQ(child.context().trace_id, root.context().trace_id);
    EXPECT_EQ(child.context().parent_id, root.context().span_id);
  }
}

// --------------------------------------------------- the four-layer tree

TEST(TraceTreeTest, PutBatchYieldsOneConnectedTreeAcrossAllFourLayers) {
  obs::TraceRing::Global().Clear();
  cloud::CloudInfrastructure cloud;
  fleet::CellFleetOptions options;
  options.cells = 3;
  options.threads = 2;
  options.docs_per_cell = 2;
  fleet::CellFleet driver(&cloud, options);
  auto report = driver.PutBatch();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->cells_ok, options.cells);
  EXPECT_EQ(report->docs_stored, options.cells * options.docs_per_cell);
  EXPECT_EQ(report->docs_fetched, options.cells * options.docs_per_cell);
  ASSERT_NE(report->trace_id, 0u);

  std::vector<obs::TraceEvent> events = obs::TraceRing::Global().Snapshot();
  std::vector<obs::SpanTree> trees = obs::Exporter::AssembleSpanTrees(events);
  const obs::SpanTree* batch_tree = nullptr;
  for (const obs::SpanTree& tree : trees) {
    if (tree.trace_id == report->trace_id) batch_tree = &tree;
  }
  ASSERT_NE(batch_tree, nullptr) << "batch trace not found in the ring";

  // One connected component: a single root, no span whose parent is
  // missing — i.e. the cross-thread handoff through the worker pool kept
  // every layer's spans attached to the batch.
  EXPECT_TRUE(batch_tree->connected())
      << batch_tree->roots.size() << " roots, " << batch_tree->orphans.size()
      << " orphans";
  ASSERT_EQ(batch_tree->roots.size(), 1u);
  const obs::AssembledSpan& root =
      batch_tree->spans.at(batch_tree->roots[0]);
  EXPECT_EQ(root.component, "fleet");
  EXPECT_EQ(root.name, "put_batch");
  EXPECT_TRUE(root.complete);

  // The one operation crossed every layer of the stack.
  for (const char* layer : {"fleet", "cell", "storage", "cloud"}) {
    EXPECT_TRUE(batch_tree->components.count(layer))
        << "no '" << layer << "' span in the batch tree";
  }

  // Every worker task span parents directly under the batch root, and
  // every cell span parents under a task span.
  size_t task_spans = 0;
  for (const auto& [span_id, span] : batch_tree->spans) {
    if (span.component == "fleet" && span.name == "task") {
      ++task_spans;
      EXPECT_EQ(span.parent_id, root.span_id);
    }
    if (span.component == "cell") {
      const obs::AssembledSpan& parent =
          batch_tree->spans.at(span.parent_id);
      EXPECT_EQ(parent.component, "fleet");
      EXPECT_EQ(parent.name, "task");
    }
    EXPECT_TRUE(span.complete) << span.component << "/" << span.name;
  }
  EXPECT_EQ(task_spans, options.cells);
}

TEST(TraceTreeTest, ChromeTraceExportCarriesTheBatch) {
  obs::TraceRing::Global().Clear();
  cloud::CloudInfrastructure cloud;
  fleet::CellFleetOptions options;
  options.cells = 2;
  options.threads = 2;
  options.docs_per_cell = 1;
  fleet::CellFleet driver(&cloud, options);
  auto report = driver.PutBatch();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::vector<obs::TraceEvent> events = obs::TraceRing::Global().Snapshot();
  std::string json = obs::Exporter::ToChromeTraceJson(events);
  // Wrapper shape + the root span as a complete ("X") event; full JSON
  // validation (parse + nesting) is scripts/validate_obs_export.sh's job.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"put_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":" + std::to_string(report->trace_id)),
            std::string::npos);

  std::string jsonl = obs::Exporter::ToJsonLines(events);
  EXPECT_NE(jsonl.find("\"name\":\"put_batch\""), std::string::npos);
}

}  // namespace
}  // namespace tc
