// Provider transactions (E15): MVCC snapshots, multi-key first-committer-
// wins commits, whole-transaction idempotency tokens, the serializability
// history checker (including its own self-test against known-bad
// histories), the cell's atomic policy+data+manifest update, and the
// outbox's crash-atomic whole-transaction journal.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tc/cell/cell.h"
#include "tc/cloud/fault_injector.h"
#include "tc/cloud/infrastructure.h"
#include "tc/cloud/txn.h"
#include "tc/common/clock.h"
#include "tc/common/codec.h"
#include "tc/fleet/fleet.h"
#include "tc/net/channel.h"
#include "tc/net/outbox.h"
#include "tc/rpc/wire_harness.h"
#include "tc/storage/log_store.h"
#include "tc/storage/page_transform.h"
#include "tc/testing/fault_injection.h"
#include "tc/testing/history_checker.h"

namespace tc {
namespace {

using cloud::BlobStore;
using cloud::kBaseVersionAny;
using cloud::SnapshotDescriptor;
using cloud::TxnOutcome;
using cloud::TxnRequest;

TxnRequest MakeTxn(const std::string& token, const SnapshotDescriptor& snap) {
  TxnRequest req;
  req.token = token;
  req.snapshot = snap;
  return req;
}

// TC_TRANSPORT=socket (the txn_test_wire ctest leg) reruns the channel,
// cell and fleet transaction suites with every channel attempt crossing a
// real loopback TCP connection — same provider, same injector, same
// serializability assertions. The BlobStore/HistoryChecker/outbox unit
// tests below exercise provider- or cell-local state and have no network
// leg to put behind a socket.
#define SKIP_IF_WIRE_LEG_IMPOSSIBLE()                           \
  do {                                                          \
    if (const char* reason = rpc::WireHarness::SkipReason()) {  \
      GTEST_SKIP() << reason;                                   \
    }                                                           \
  } while (false)

/// Builds a channel on the harness's socket transport when the wire leg is
/// active, on the direct in-process path otherwise.
std::unique_ptr<net::ResilientChannel> MakeChannel(
    cloud::CloudInfrastructure* cloud, rpc::WireHarness& wire,
    const std::string& peer, const net::ChannelOptions& options = {}) {
  if (wire.transport() != nullptr) {
    return std::make_unique<net::ResilientChannel>(wire.transport(), peer,
                                                   options);
  }
  return std::make_unique<net::ResilientChannel>(cloud, peer, options);
}

// ---------------------------------------------------------------------------
// BlobStore MVCC unit tests.
// ---------------------------------------------------------------------------

TEST(BlobStoreTxnTest, SnapshotIsStableAcrossLaterPuts) {
  BlobStore store;
  EXPECT_EQ(store.Put("a", ToBytes("v1")), 1u);
  SnapshotDescriptor snap = store.Snapshot();
  EXPECT_EQ(store.Put("a", ToBytes("v2")), 2u);

  auto read = store.GetAtSnapshot("a", snap);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->data, ToBytes("v1"));
  EXPECT_EQ(read->version, 1u);
  EXPECT_EQ(*store.Get("a"), ToBytes("v2"));

  // A fresh snapshot observes the new version.
  auto fresh = store.GetAtSnapshot("a", store.Snapshot());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->version, 2u);
}

TEST(BlobStoreTxnTest, BlobBornAfterSnapshotIsInvisible) {
  BlobStore store;
  SnapshotDescriptor snap = store.Snapshot();
  store.Put("late", ToBytes("x"));
  EXPECT_TRUE(store.GetAtSnapshot("late", snap).status().IsNotFound());
  EXPECT_TRUE(store.GetAtSnapshot("late", store.Snapshot()).ok());
}

TEST(BlobStoreTxnTest, MultiKeyCommitIsAtomicUnderOneSequence) {
  BlobStore store;
  SnapshotDescriptor before = store.Snapshot();

  TxnRequest req = MakeTxn("cell-a|txn|1", before);
  req.writes.push_back({"x", ToBytes("x1"), 0});
  req.writes.push_back({"y", ToBytes("y1"), 0});
  TxnOutcome outcome = store.CommitTxn(req);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_TRUE(outcome.committed);
  EXPECT_FALSE(outcome.replayed);
  EXPECT_GT(outcome.commit_seq, 0u);
  ASSERT_EQ(outcome.versions.size(), 2u);
  EXPECT_EQ(outcome.versions[0], 1u);
  EXPECT_EQ(outcome.versions[1], 1u);

  // The pre-commit snapshot sees neither write; a fresh one sees both at
  // the SAME commit sequence (never torn).
  EXPECT_TRUE(store.GetAtSnapshot("x", before).status().IsNotFound());
  EXPECT_TRUE(store.GetAtSnapshot("y", before).status().IsNotFound());
  SnapshotDescriptor after = store.Snapshot();
  auto x = store.GetAtSnapshot("x", after);
  auto y = store.GetAtSnapshot("y", after);
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(x->commit_seq, outcome.commit_seq);
  EXPECT_EQ(y->commit_seq, outcome.commit_seq);

  EXPECT_EQ(store.txns_committed(), 1u);
  EXPECT_EQ(store.txn_writes_applied(), 2u);
  EXPECT_EQ(store.versions_created(),
            store.tokens_applied() + store.txn_writes_applied());
}

TEST(BlobStoreTxnTest, FirstCommitterWinsAndAbortedTokenMayCommitLater) {
  BlobStore store;
  store.Put("k", ToBytes("base"));

  SnapshotDescriptor snap = store.Snapshot();
  TxnRequest a = MakeTxn("token-a", snap);
  a.reads.push_back({"k", 1});
  a.writes.push_back({"k", ToBytes("from-a"), 1});
  TxnRequest b = MakeTxn("token-b", snap);
  b.reads.push_back({"k", 1});
  b.writes.push_back({"k", ToBytes("from-b"), 1});

  TxnOutcome oa = store.CommitTxn(a);
  ASSERT_TRUE(oa.committed);
  EXPECT_EQ(oa.versions[0], 2u);

  // Second committer loses: definitive abort naming the conflicting key.
  TxnOutcome ob = store.CommitTxn(b);
  EXPECT_FALSE(ob.committed);
  EXPECT_TRUE(ob.status.IsAborted()) << ob.status.ToString();
  EXPECT_EQ(ob.conflict_id, "k");
  EXPECT_EQ(store.txns_aborted(), 1u);
  EXPECT_EQ(*store.Get("k"), ToBytes("from-a"));

  // Aborts leave nothing in the token table: the SAME token, rebuilt
  // against a fresh snapshot, validates again and commits (not a replay).
  SnapshotDescriptor fresh = store.Snapshot();
  TxnRequest retry = MakeTxn("token-b", fresh);
  retry.reads.push_back({"k", 2});
  retry.writes.push_back({"k", ToBytes("from-b-retry"), 2});
  TxnOutcome oretry = store.CommitTxn(retry);
  ASSERT_TRUE(oretry.committed);
  EXPECT_FALSE(oretry.replayed);
  EXPECT_EQ(oretry.versions[0], 3u);
  EXPECT_EQ(*store.Get("k"), ToBytes("from-b-retry"));
}

TEST(BlobStoreTxnTest, ReadSetValidationCatchesConcurrentWriter) {
  BlobStore store;
  store.Put("watched", ToBytes("w1"));

  // The txn READS "watched" (no write) and writes elsewhere; a concurrent
  // writer moving "watched" must abort it (validation covers the read set,
  // not just write bases).
  SnapshotDescriptor snap = store.Snapshot();
  TxnRequest req = MakeTxn("reader-txn", snap);
  req.reads.push_back({"watched", 1});
  req.writes.push_back({"derived", ToBytes("d1"), 0});

  store.Put("watched", ToBytes("w2"));  // Concurrent writer wins.

  TxnOutcome outcome = store.CommitTxn(req);
  EXPECT_FALSE(outcome.committed);
  EXPECT_TRUE(outcome.status.IsAborted());
  EXPECT_EQ(outcome.conflict_id, "watched");
  EXPECT_FALSE(store.Exists("derived"));
}

TEST(BlobStoreTxnTest, TokenReplayReturnsOriginalOutcomeWithoutReapplying) {
  BlobStore store;
  TxnRequest req = MakeTxn("redelivered", store.Snapshot());
  req.writes.push_back({"x", ToBytes("x1"), 0});
  req.writes.push_back({"y", ToBytes("y1"), 0});

  TxnOutcome first = store.CommitTxn(req);
  ASSERT_TRUE(first.committed);
  const uint64_t writes_after_first = store.txn_writes_applied();
  const uint64_t versions_after_first = store.versions_created();

  // Identical re-delivery (lost ack): answered from the txn-token table.
  TxnOutcome replay = store.CommitTxn(req);
  ASSERT_TRUE(replay.committed);
  EXPECT_TRUE(replay.replayed);
  EXPECT_EQ(replay.commit_seq, first.commit_seq);
  EXPECT_EQ(replay.versions, first.versions);
  EXPECT_EQ(store.txn_writes_applied(), writes_after_first);
  EXPECT_EQ(store.versions_created(), versions_after_first);
  EXPECT_EQ(store.txn_replays(), 1u);
  EXPECT_EQ(*store.LatestVersion("x"), 1u);
  EXPECT_EQ(*store.LatestVersion("y"), 1u);
}

TEST(BlobStoreTxnTest, BlindWritesSkipValidation) {
  BlobStore store;
  store.Put("k", ToBytes("v1"));
  SnapshotDescriptor stale = store.Snapshot();
  store.Put("k", ToBytes("v2"));

  // kBaseVersionAny is the outbox-drain mode: last-writer-wins on top of
  // whatever is latest, never an abort, still atomic across the set.
  TxnRequest req = MakeTxn("drain-token", stale);
  req.writes.push_back({"k", ToBytes("drained"), kBaseVersionAny});
  req.writes.push_back({"m", ToBytes("m1"), kBaseVersionAny});
  TxnOutcome outcome = store.CommitTxn(req);
  ASSERT_TRUE(outcome.committed) << outcome.status.ToString();
  EXPECT_EQ(outcome.versions[0], 3u);
  EXPECT_EQ(outcome.versions[1], 1u);
  EXPECT_EQ(*store.Get("k"), ToBytes("drained"));
}

TEST(BlobStoreTxnTest, RejectsMalformedRequests) {
  BlobStore store;
  SnapshotDescriptor snap = store.Snapshot();

  TxnRequest no_token = MakeTxn("", snap);
  no_token.writes.push_back({"x", ToBytes("x"), 0});
  EXPECT_EQ(store.CommitTxn(no_token).status.code(),
            StatusCode::kInvalidArgument);

  TxnRequest no_writes = MakeTxn("t", snap);
  EXPECT_EQ(store.CommitTxn(no_writes).status.code(),
            StatusCode::kInvalidArgument);

  TxnRequest dup = MakeTxn("t", snap);
  dup.writes.push_back({"x", ToBytes("a"), 0});
  dup.writes.push_back({"x", ToBytes("b"), 0});
  EXPECT_EQ(store.CommitTxn(dup).status.code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(store.txns_committed(), 0u);
  EXPECT_EQ(store.versions_created(), 0u);
}

// ---------------------------------------------------------------------------
// HistoryChecker self-test: accepts a good history, rejects every class of
// injected-bad history it exists to catch.
// ---------------------------------------------------------------------------

SnapshotDescriptor Snap(uint64_t base_seq) {
  SnapshotDescriptor snap;
  snap.base_seq = base_seq;
  return snap;
}

bool AnyViolationContains(const std::vector<std::string>& violations,
                          const std::string& needle) {
  for (const auto& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(HistoryCheckerTest, AcceptsSerialHistory) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("t1", Snap(0));
  checker.OnRead("t1", "k", 0);
  checker.OnCommit("t1", 1, {{"k", 1}});
  checker.OnBegin("t2", Snap(1));
  checker.OnRead("t2", "k", 1);
  checker.OnCommit("t2", 2, {{"k", 2}});
  // An aborted attempt that read consistently is fine.
  checker.OnBegin("t3", Snap(1));
  checker.OnRead("t3", "k", 1);
  checker.OnAbort("t3");

  auto violations = checker.Verify();
  EXPECT_TRUE(violations.empty())
      << "unexpected violation: " << violations.front();
  EXPECT_EQ(checker.recorded_txns(), 3u);
  EXPECT_EQ(checker.commits(), 2u);
  EXPECT_EQ(checker.aborts(), 1u);
}

TEST(HistoryCheckerTest, RejectsLostUpdate) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("t1", Snap(0));
  checker.OnRead("t1", "k", 0);
  checker.OnCommit("t1", 1, {{"k", 1}});
  // t2 read the SAME version 0 yet was allowed to commit on top of t1:
  // classic lost update — its write is not read_version + 1.
  checker.OnBegin("t2", Snap(0));
  checker.OnRead("t2", "k", 0);
  checker.OnCommit("t2", 2, {{"k", 2}});
  EXPECT_TRUE(AnyViolationContains(checker.Verify(), "lost update"));
}

TEST(HistoryCheckerTest, RejectsTornSnapshot) {
  tc::testing::HistoryChecker checker;
  // One commit wrote k1 and k2 together...
  checker.OnBegin("writer", Snap(0));
  checker.OnCommit("writer", 1, {{"k1", 1}, {"k2", 1}});
  // ...but a reader claiming to run at base 1 saw only half of it.
  checker.OnBegin("reader", Snap(1));
  checker.OnRead("reader", "k1", 1);
  checker.OnRead("reader", "k2", 0);  // Torn: should be 1.
  checker.OnAbort("reader");
  EXPECT_TRUE(AnyViolationContains(checker.Verify(), "newest visible"));
}

TEST(HistoryCheckerTest, RejectsDuplicateVersion) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("t1", Snap(0));
  checker.OnCommit("t1", 1, {{"k", 1}});
  checker.OnBegin("t2", Snap(1));
  checker.OnCommit("t2", 2, {{"k", 1}});  // Same version, two writers.
  EXPECT_TRUE(AnyViolationContains(checker.Verify(), "both committed"));
}

TEST(HistoryCheckerTest, RejectsVersionGap) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("t1", Snap(0));
  checker.OnCommit("t1", 1, {{"k", 1}});
  checker.OnBegin("t2", Snap(1));
  checker.OnCommit("t2", 2, {{"k", 3}});  // Version 2 never committed.
  EXPECT_TRUE(AnyViolationContains(checker.Verify(), "version gap"));
}

TEST(HistoryCheckerTest, RejectsVersionSequenceOrderInversion) {
  tc::testing::HistoryChecker checker;
  // k's version 1 committed at sequence 5 but version 2 at sequence 3:
  // version order and serialization order disagree.
  checker.OnBegin("t1", Snap(0));
  checker.OnCommit("t1", 5, {{"k", 1}});
  checker.OnBegin("t2", Snap(0));
  checker.OnCommit("t2", 3, {{"k", 2}});
  EXPECT_TRUE(
      AnyViolationContains(checker.Verify(), "not after its predecessor"));
}

TEST(HistoryCheckerTest, RejectsFutureRead) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("writer", Snap(0));
  checker.OnCommit("writer", 1, {{"k", 1}});
  // Reader's snapshot (base 0) predates the commit, yet it saw version 1.
  checker.OnBegin("reader", Snap(0));
  checker.OnRead("reader", "k", 1);
  checker.OnAbort("reader");
  EXPECT_TRUE(AnyViolationContains(checker.Verify(), "newest visible"));
}

TEST(HistoryCheckerTest, RejectsSelfVisibleCommit) {
  tc::testing::HistoryChecker checker;
  // Commit sequence 3 is inside the snapshot (base 5) it claims to have
  // run against — the snapshot cannot predate the commit.
  checker.OnBegin("t1", Snap(5));
  checker.OnCommit("t1", 3, {{"k", 1}});
  EXPECT_TRUE(
      AnyViolationContains(checker.Verify(), "visible in its own snapshot"));
}

TEST(HistoryCheckerTest, RejectsSharedCommitSequence) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("t1", Snap(0));
  checker.OnCommit("t1", 7, {{"a", 1}});
  checker.OnBegin("t2", Snap(0));
  checker.OnCommit("t2", 7, {{"b", 1}});
  EXPECT_TRUE(
      AnyViolationContains(checker.Verify(), "share commit sequence"));
}

TEST(HistoryCheckerTest, RejectsProtocolErrors) {
  tc::testing::HistoryChecker checker;
  checker.OnBegin("t1", Snap(0));
  checker.OnBegin("t1", Snap(0));  // Began twice.
  checker.OnRead("orphan", "k", 0);  // Read before begin.
  checker.OnBegin("t2", Snap(0));
  checker.OnCommit("t2", 1, {{"k", 1}});
  checker.OnAbort("t2");  // Resolved twice.
  auto violations = checker.Verify();
  EXPECT_TRUE(AnyViolationContains(violations, "began twice"));
  EXPECT_TRUE(AnyViolationContains(violations, "before begin"));
  EXPECT_TRUE(AnyViolationContains(violations, "resolved twice"));
}

// ---------------------------------------------------------------------------
// Channel-level commit protocol under injected faults.
// ---------------------------------------------------------------------------

TEST(ChannelTxnTest, LossyNetworkCommitsExactlyOncePerToken) {
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  cloud::CloudInfrastructure cloud;
  cloud::NetworkFaultConfig config;
  config.drop_ack_prob = 0.3;   // Lost acks force same-request re-sends.
  config.duplicate_prob = 0.4;  // Duplicated deliveries hit the token table.
  config.drop_request_prob = 0.1;
  config.seed = 42;
  cloud::NetworkFaultInjector injector(config);
  cloud.set_fault_injector(&injector);
  rpc::WireHarness wire(&cloud);

  net::ChannelOptions options;
  options.op_deadline_us = 2000000;  // Generous: resolve every commit.
  auto channel_ptr = MakeChannel(&cloud, wire, "cell-1", options);
  net::ResilientChannel& channel = *channel_ptr;

  const int kRounds = 20;
  int committed = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::string token = "cell-1/txn" + std::to_string(round);
    bool done = false;
    for (int attempt = 0; attempt < 64 && !done; ++attempt) {
      if (channel.degraded()) {
        channel.AdvanceVirtualTime(options.breaker.open_cooldown_us);
      }
      auto snap = channel.GetSnapshot();
      if (!snap.ok()) continue;
      uint64_t version = 0;
      auto read = channel.GetAtSnapshot("counter", *snap);
      if (read.ok()) {
        version = read->version;
      } else if (!read.status().IsNotFound()) {
        continue;
      }
      TxnRequest req = MakeTxn(token, *snap);
      req.reads.push_back({"counter", version});
      req.writes.push_back(
          {"counter", ToBytes("round" + std::to_string(round)), version});
      // Single-client workload: no contention, so every answer the channel
      // labels definitive must be a commit, and an unresolved outcome is
      // resolved by re-sending the identical request (the token table turns
      // the re-send into a replay if it had applied).
      TxnOutcome outcome = channel.CommitTxn(req);
      if (outcome.committed) {
        ++committed;
        done = true;
      } else {
        ASSERT_FALSE(outcome.status.IsAborted())
            << "single-writer txn aborted: " << outcome.status.ToString();
      }
    }
    ASSERT_TRUE(done) << "round " << round << " never resolved";
  }

  // Exactly one version per round despite drops, duplicates and re-sends.
  EXPECT_EQ(committed, kRounds);
  EXPECT_EQ(*cloud.LatestBlobVersion("counter"),
            static_cast<uint64_t>(kRounds));
  EXPECT_EQ(channel.stats().txns_committed, static_cast<uint64_t>(kRounds));
  const BlobStore& store = cloud.blob_store();
  EXPECT_EQ(store.versions_created(),
            store.tokens_applied() + store.txn_writes_applied());
  EXPECT_GT(injector.stats().faults(), 0u);
}

TEST(ChannelTxnTest, AbortIsDefinitiveAndDoesNotTripBreaker) {
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  cloud::CloudInfrastructure cloud;
  cloud.PutBlob("k", ToBytes("v1"));
  rpc::WireHarness wire(&cloud);
  auto channel_ptr = MakeChannel(&cloud, wire, "cell-1");
  net::ResilientChannel& channel = *channel_ptr;

  auto snap = channel.GetSnapshot();
  ASSERT_TRUE(snap.ok());
  cloud.PutBlob("k", ToBytes("v2"));  // Concurrent writer wins.

  TxnRequest req = MakeTxn("stale-txn", *snap);
  req.reads.push_back({"k", 1});
  req.writes.push_back({"k", ToBytes("mine"), 1});
  TxnOutcome outcome = channel.CommitTxn(req);
  EXPECT_FALSE(outcome.committed);
  EXPECT_TRUE(outcome.status.IsAborted());

  // The abort is the provider ANSWERING, not the network failing: one
  // attempt, no retries, breaker untouched.
  EXPECT_EQ(channel.stats().txns_aborted, 1u);
  EXPECT_EQ(channel.stats().retries, 0u);
  EXPECT_EQ(channel.stats().breaker_opens, 0u);
  EXPECT_FALSE(channel.degraded());
}

// ---------------------------------------------------------------------------
// Cell-level atomic policy+data+manifest update.
// ---------------------------------------------------------------------------

class CellTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SKIP_IF_WIRE_LEG_IMPOSSIBLE();
    clock_.Set(MakeTimestamp(2013, 1, 7, 9, 0, 0));
    cloud_.set_fault_injector(&injector_);
    wire_ = std::make_unique<rpc::WireHarness>(&cloud_);
  }

  std::unique_ptr<cell::TrustedCell> MakeCell(const std::string& id,
                                              bool resilient) {
    cell::TrustedCell::Config config;
    config.cell_id = id;
    config.owner = "alice";
    config.use_default_flash = false;
    config.flash.page_size = 2048;
    config.flash.pages_per_block = 16;
    config.flash.block_count = 256;
    config.resilient_sync = resilient;
    config.channel.op_deadline_us = 30000;  // Fail over to the outbox fast.
    config.transport = wire_->transport();  // nullptr => in-process.
    auto cell =
        cell::TrustedCell::Create(config, &cloud_, &directory_, &clock_);
    TC_CHECK(cell.ok());
    return std::move(*cell);
  }

  /// Token-accounting invariant — valid only when every put in the run
  /// was idempotent (resilient cells); direct PutBlob is tokenless.
  void ExpectStoreInvariant() {
    const BlobStore& store = cloud_.blob_store();
    EXPECT_EQ(store.versions_created(),
              store.tokens_applied() + store.txn_writes_applied());
  }

  SimulatedClock clock_;
  cloud::NetworkFaultInjector injector_{cloud::NetworkFaultConfig{}};
  cloud::CloudInfrastructure cloud_;
  cell::CellDirectory directory_;
  // Declared last: the harness's server must stop dispatching onto cloud_
  // before cloud_ is destroyed.
  std::unique_ptr<rpc::WireHarness> wire_;
};

TEST_F(CellTxnTest, AtomicUpdatePublishesDataAndManifestTogether) {
  auto gateway = MakeCell("alice-gateway", /*resilient=*/false);
  auto tablet = MakeCell("alice-tablet", /*resilient=*/false);
  policy::Policy policy = cell::MakeOwnerPolicy("alice");

  auto doc_id = gateway->StoreDocument("will", "estate legal",
                                       ToBytes("first draft"), policy);
  ASSERT_TRUE(doc_id.ok()) << doc_id.status().ToString();
  ASSERT_TRUE(gateway->SyncPush().ok());
  ASSERT_TRUE(tablet->SyncPull().ok());
  ASSERT_EQ(*tablet->FetchDocument(*doc_id), ToBytes("first draft"));

  // One transaction: new sealed payload + refreshed manifest.
  ASSERT_TRUE(
      gateway->UpdateDocumentAtomic(*doc_id, ToBytes("second draft")).ok());
  EXPECT_EQ(gateway->stats().atomic_updates, 1u);
  EXPECT_EQ(*gateway->FetchDocument(*doc_id), ToBytes("second draft"));

  // The sibling's next pull adopts BOTH: fresh manifest names the fresh
  // payload version, so the fetch unseals cleanly.
  ASSERT_TRUE(tablet->SyncPull().ok());
  auto fetched = tablet->FetchDocument(*doc_id);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, ToBytes("second draft"));
  EXPECT_EQ(tablet->GetDocumentMeta(*doc_id)->version, 2u);
}

TEST_F(CellTxnTest, AtomicUpdateCanRebindThePolicy) {
  auto gateway = MakeCell("alice-gateway", /*resilient=*/false);
  policy::Policy open_policy = cell::MakeOwnerPolicy("alice");
  auto doc_id = gateway->StoreDocument("photo", "vacation",
                                       ToBytes("jpeg bytes"), open_policy);
  ASSERT_TRUE(doc_id.ok());

  policy::Policy strict = cell::MakeOwnerPolicy("alice");
  ASSERT_TRUE(gateway
                  ->UpdateDocumentAtomic(*doc_id, ToBytes("jpeg bytes v2"),
                                         &strict)
                  .ok());
  // The rebound sticky policy still verifies: the owner read path checks
  // the policy MAC before unsealing.
  EXPECT_EQ(*gateway->FetchDocument(*doc_id), ToBytes("jpeg bytes v2"));
}

TEST_F(CellTxnTest, PartitionedAtomicUpdateJournalsWholeTxnAndDrains) {
  auto gateway = MakeCell("alice-gateway", /*resilient=*/true);
  auto tablet = MakeCell("alice-tablet", /*resilient=*/false);
  policy::Policy policy = cell::MakeOwnerPolicy("alice");

  auto doc_id = gateway->StoreDocument("ledger", "finance",
                                       ToBytes("opening balance"), policy);
  ASSERT_TRUE(doc_id.ok()) << doc_id.status().ToString();
  ASSERT_TRUE(gateway->SyncPush().ok());
  ASSERT_TRUE(tablet->SyncPull().ok());

  // Pull the WAN cable: the atomic update must journal the WHOLE
  // transaction (payload + manifest) as one outbox record.
  injector_.ForceOutage(true);
  ASSERT_TRUE(
      gateway->UpdateDocumentAtomic(*doc_id, ToBytes("amended balance")).ok());
  EXPECT_TRUE(gateway->degraded());
  EXPECT_EQ(gateway->stats().txns_deferred, 1u);
  EXPECT_GE(gateway->outbox_pending(), 1u);

  // Read-your-writes while partitioned: the queued txn payload serves the
  // local fetch.
  EXPECT_EQ(*gateway->FetchDocument(*doc_id), ToBytes("amended balance"));

  // The provider still holds the OLD state — the sibling sees version 1.
  injector_.ForceOutage(false);
  ASSERT_TRUE(tablet->SyncPull().ok());
  EXPECT_EQ(tablet->GetDocumentMeta(*doc_id)->version, 1u);

  // Heal: catch-up drains the journaled transaction atomically under its
  // original token.
  ASSERT_TRUE(gateway->CatchUp().ok());
  EXPECT_EQ(gateway->outbox_pending(), 0u);
  EXPECT_FALSE(gateway->degraded());
  EXPECT_GE(gateway->stats().catchup_drained, 1u);

  // Now the sibling converges to the new payload AND the new manifest.
  ASSERT_TRUE(tablet->SyncPull().ok());
  auto fetched = tablet->FetchDocument(*doc_id);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, ToBytes("amended balance"));
  EXPECT_EQ(tablet->GetDocumentMeta(*doc_id)->version, 2u);
  ExpectStoreInvariant();
}

// ---------------------------------------------------------------------------
// Fleet read-modify-write contention workload feeding the checker.
// ---------------------------------------------------------------------------

TEST(FleetTxnTest, ContendedCountersCommitExactlyAndSerializably) {
  SKIP_IF_WIRE_LEG_IMPOSSIBLE();
  cloud::CloudInfrastructure cloud;
  rpc::WireHarness wire(&cloud);
  tc::testing::HistoryChecker checker;

  fleet::FleetOptions options;
  options.cells = 8;
  options.threads = 4;
  options.rounds_per_cell = 8;
  options.txn_workload = true;
  options.txn_shared_docs = 4;
  options.txn_keys = 2;
  options.seed = 7;
  options.history = &checker;
  options.transport = wire.transport();

  fleet::FleetRunner runner(&cloud, options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const auto& cell : report->cells) {
    EXPECT_TRUE(cell.status.ok())
        << cell.cell_id << ": " << cell.status.ToString();
  }
  EXPECT_TRUE(report->converged);

  // Every logical transaction ran to commit exactly once (Run() already
  // audited Σ final versions == commits × keys against the provider).
  const uint64_t expected = options.cells * options.rounds_per_cell;
  EXPECT_EQ(report->txns_committed, expected);
  EXPECT_EQ(checker.commits(), expected);

  auto violations = checker.Verify();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: " << violations.front();

  const BlobStore& store = cloud.blob_store();
  EXPECT_EQ(store.versions_created(),
            store.tokens_applied() + store.txn_writes_applied());
}

// ---------------------------------------------------------------------------
// Outbox whole-transaction journal: crash-atomic across power loss
// (satellite: crash between prepare and commit, reopen, all-or-nothing).
// ---------------------------------------------------------------------------

storage::FlashGeometry OutboxGeometry() {
  storage::FlashGeometry geo;
  geo.page_size = 512;
  geo.pages_per_block = 8;
  geo.block_count = 32;
  return geo;
}

TEST(OutboxTxnCrashTest, JournaledTxnFullyAppliesOrFullyAbortsAfterCrash) {
  const Bytes doc_payload = ToBytes("sealed document payload");
  const Bytes manifest_payload = ToBytes("sealed manifest payload");
  const std::string token = "alice-gateway|txn/space/alice/doc/1|v2";
  storage::PlainPageTransform plain;

  int saw_absent = 0;
  int saw_present = 0;
  // Sweep the power-loss point across every flash write the enqueue path
  // performs (torn last page): after reopen the journal must hold the
  // whole two-write transaction or none of it — never half.
  for (uint64_t crash_at = 1; crash_at <= 64; ++crash_at) {
    auto dev = std::make_unique<tc::testing::FaultyFlashDevice>(
        OutboxGeometry(), tc::testing::FaultPlan{});
    // Prepare: a formatted store with an unrelated record already durable,
    // so recovery always has a valid tail to rebuild.
    {
      auto store =
          storage::LogStore::Open(dev.get(), &plain, storage::LogStoreOptions{});
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ASSERT_TRUE((*store)->Put("meta/doc/1", ToBytes("local meta")).ok());
    }

    // Arm the power loss relative to the writes already performed (the
    // device ordinal counter is cumulative) and journal the transaction.
    tc::testing::FaultPlan plan;
    plan.seed = crash_at;
    plan.power_loss_after_write_ops = dev->write_ops_seen() + crash_at;
    plan.torn = tc::testing::TornWriteMode::kPrefix;
    dev->SetPlan(plan);
    bool crashed = false;
    {
      auto store =
          storage::LogStore::Open(dev.get(), &plain, storage::LogStoreOptions{});
      if (store.ok()) {
        net::Outbox outbox(store->get());
        ASSERT_TRUE(outbox.Load().ok());
        Status enq = outbox.EnqueueTxn(
            token, {{"space/alice/doc/1", doc_payload},
                    {"space/alice/manifest", manifest_payload}});
        crashed = dev->powered_off();
        if (!crashed) {
          ASSERT_TRUE(enq.ok()) << enq.ToString();
        }
      } else {
        crashed = dev->powered_off();
        ASSERT_TRUE(crashed) << store.status().ToString();
      }
    }

    // Reopen after the crash (tolerating the torn tail page).
    dev->PowerOn();
    dev->SetPlan(tc::testing::FaultPlan{});
    storage::LogStoreOptions tolerant;
    tolerant.max_recovery_skips = 4;
    auto reopened = storage::LogStore::Open(dev.get(), &plain, tolerant);
    ASSERT_TRUE(reopened.ok()) << "crash_at=" << crash_at << ": "
                               << reopened.status().ToString();
    net::Outbox outbox(reopened->get());
    ASSERT_TRUE(outbox.Load().ok());

    // All-or-nothing: the txn record is either intact or absent.
    cloud::CloudInfrastructure cloud;
    if (outbox.empty()) {
      ++saw_absent;
    } else {
      ASSERT_EQ(outbox.size(), 1u) << "crash_at=" << crash_at;
      const net::OutboxRecord& record = outbox.pending().begin()->second;
      ASSERT_TRUE(record.is_txn);
      EXPECT_EQ(record.token, token);
      ASSERT_EQ(record.txn_writes.size(), 2u);
      EXPECT_EQ(record.txn_writes[0].blob_id, "space/alice/doc/1");
      EXPECT_EQ(record.txn_writes[0].payload, doc_payload);
      EXPECT_EQ(record.txn_writes[1].blob_id, "space/alice/manifest");
      EXPECT_EQ(record.txn_writes[1].payload, manifest_payload);
      ++saw_present;

      // Drain it: both writes land atomically under the original token.
      TxnRequest req = MakeTxn(record.token, cloud.GetSnapshot());
      for (const auto& write : record.txn_writes) {
        req.writes.push_back({write.blob_id, write.payload, kBaseVersionAny});
      }
      TxnOutcome outcome = cloud.CommitTxn(req);
      ASSERT_TRUE(outcome.committed) << outcome.status.ToString();
      EXPECT_EQ(*cloud.GetBlob("space/alice/doc/1"), doc_payload);
      EXPECT_EQ(*cloud.GetBlob("space/alice/manifest"), manifest_payload);
    }
    if (outbox.empty()) {
      // Nothing journaled → nothing drains → the provider never sees a
      // partial transaction.
      EXPECT_FALSE(cloud.blob_store().Exists("space/alice/doc/1"));
      EXPECT_FALSE(cloud.blob_store().Exists("space/alice/manifest"));
    }

    if (!crashed) break;  // Power loss landed past the whole enqueue.
  }
  EXPECT_GE(saw_absent, 1) << "sweep never hit the pre-durability window";
  EXPECT_GE(saw_present, 1) << "sweep never completed an enqueue";
}

TEST(OutboxTxnCrashTest, RedrainAfterCrashBeforeMarkDoneReplaysNotReapplies) {
  storage::FlashDevice dev(OutboxGeometry());
  storage::PlainPageTransform plain;
  auto store =
      storage::LogStore::Open(&dev, &plain, storage::LogStoreOptions{});
  ASSERT_TRUE(store.ok());

  const std::string token = "alice-gateway|txn/space/alice/doc/7|v3";
  net::Outbox outbox(store->get());
  ASSERT_TRUE(outbox.Load().ok());
  ASSERT_TRUE(outbox
                  .EnqueueTxn(token, {{"doc", ToBytes("payload")},
                                      {"manifest", ToBytes("manifest")}})
                  .ok());

  // First drain reaches the provider and commits...
  cloud::CloudInfrastructure cloud;
  const net::OutboxRecord& record = outbox.pending().begin()->second;
  TxnRequest req = MakeTxn(record.token, cloud.GetSnapshot());
  for (const auto& write : record.txn_writes) {
    req.writes.push_back({write.blob_id, write.payload, kBaseVersionAny});
  }
  TxnOutcome first = cloud.CommitTxn(req);
  ASSERT_TRUE(first.committed);
  EXPECT_FALSE(first.replayed);

  // ...but the cell "crashes" before MarkDone: a fresh Outbox over the
  // same store still sees the record pending.
  net::Outbox reopened(store->get());
  ASSERT_TRUE(reopened.Load().ok());
  ASSERT_EQ(reopened.size(), 1u);

  // The re-drain re-sends the identical request under the original token:
  // the provider replays the original outcome instead of re-applying.
  TxnOutcome second = cloud.CommitTxn(req);
  ASSERT_TRUE(second.committed);
  EXPECT_TRUE(second.replayed);
  EXPECT_EQ(second.commit_seq, first.commit_seq);
  EXPECT_EQ(second.versions, first.versions);
  EXPECT_EQ(*cloud.LatestBlobVersion("doc"), 1u);
  EXPECT_EQ(*cloud.LatestBlobVersion("manifest"), 1u);
  ASSERT_TRUE(reopened.MarkDone(reopened.pending().begin()->first).ok());
  EXPECT_TRUE(reopened.empty());

  const BlobStore& blob_store = cloud.blob_store();
  EXPECT_EQ(blob_store.txn_replays(), 1u);
  EXPECT_EQ(blob_store.versions_created(),
            blob_store.tokens_applied() + blob_store.txn_writes_applied());
}

}  // namespace
}  // namespace tc
